package engine

import (
	"errors"
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// ErrSessionReset is returned by Session.Call when a reconnect
// interrupted a non-idempotent call. The request may or may not have
// executed on the server (the old connection died before the response
// arrived), and replaying it on the fresh connection could execute it
// twice — only the application knows whether that is safe, so it must
// opt in per call with CallOpts.Idempotent.
var ErrSessionReset = errors.New("engine: session reset (call may have executed)")

// Session defaults, in virtual nanoseconds.
const (
	// DefaultSessionCallDeadline is applied to a session call when
	// neither the call nor the engine configures a deadline: a session
	// call must always fail typed, never block forever — the session's
	// whole reason to exist is reacting to those typed failures.
	DefaultSessionCallDeadline = sim.Duration(2_000_000)
	// DefaultKeepaliveDeadline bounds one keepalive probe.
	DefaultKeepaliveDeadline = sim.Duration(500_000)
	// DefaultRedialBackoff paces reconnect attempts (doubling, capped).
	DefaultRedialBackoff = sim.Duration(100_000)
	redialBackoffCapNs   = sim.Duration(5_000_000)
	// DefaultMaxRedials bounds one outage's reconnect attempts before
	// Call gives up with ErrPeerDown.
	DefaultMaxRedials = 10
	// sessionHandshakeTimeoutNs bounds the hello exchange of one dial
	// attempt (a server that crashed mid-handshake must not wedge the
	// redial loop).
	sessionHandshakeTimeoutNs = sim.Duration(1_000_000)
)

// SessionConfig tunes a Session. The zero value gets the defaults
// above with keepalive probing disabled.
type SessionConfig struct {
	// KeepaliveInterval spaces idle-session liveness probes (reserved
	// function FnKeepalive). Zero disables the prober; calls still
	// detect peer death through their own typed failures.
	KeepaliveInterval sim.Duration
	// KeepaliveDeadline bounds one probe (default DefaultKeepaliveDeadline).
	KeepaliveDeadline sim.Duration
	// RedialBackoff is the initial wait between reconnect attempts,
	// doubling up to an internal cap (default DefaultRedialBackoff).
	RedialBackoff sim.Duration
	// MaxRedials bounds reconnect attempts per outage (default
	// DefaultMaxRedials).
	MaxRedials int
	// CallDeadline overrides DefaultSessionCallDeadline as the fallback
	// per-call deadline.
	CallDeadline sim.Duration
	// DrainHold is how long the prober stays quiet after a probe is
	// answered with the typed ErrDraining announcement: no probes and no
	// eager redials until the hold expires, so a rolling restart does not
	// trigger session_redials storms against a node that said it is going
	// away on purpose. Zero defaults to DefaultDrainHoldProbes intervals.
	DrainHold sim.Duration
}

// SessionStats counts a session's lifecycle events.
type SessionStats struct {
	Connects   int64 // successful dials (first connect included)
	Replays    int64 // idempotent calls replayed on a fresh connection
	Resets     int64 // non-idempotent calls failed with ErrSessionReset
	Probes     int64 // keepalive probes issued
	DrainHolds int64 // probe holds entered on a peer's drain announcement
}

// Session is an epoch-numbered reconnecting RPC channel above Conn.
// Where a Conn is one connection — dead the moment its peer crashes —
// a Session survives peer restarts: a call failing with ErrPeerDown
// tears the connection down and re-dials (fresh QPs, fresh MRs, fresh
// rkeys against the peer's new boot epoch, a fresh closed breaker),
// replaying the interrupted call if it was marked Idempotent and
// failing it with ErrSessionReset otherwise. An optional keepalive
// prober detects peer death on idle sessions and re-establishes
// eagerly so the next call finds a live connection.
//
// A Session serializes its connection use with a simulation mutex
// (Conn carries one outstanding call); concurrency comes from many
// sessions, exactly as it comes from many conns.
type Session struct {
	eng    *Engine
	target *simnet.Node
	port   string
	cfg    SessionConfig

	mu    *sim.Mutex
	conn  *Conn
	epoch int64 // increments on every successful (re)connect
	down  bool  // connection known dead; next use reconnects
	shut  bool

	stats SessionStats
}

// NewSession dials target:port and wraps the connection in a Session.
// The initial dial runs through the same bounded redial loop as
// reconnection, so dialing a currently-down node fails typed with
// ErrPeerDown instead of blocking.
func (e *Engine) NewSession(p *sim.Proc, target *simnet.Node, port string, cfg SessionConfig) (*Session, error) {
	s := &Session{eng: e, target: target, port: port, cfg: cfg, mu: sim.NewMutex(e.env)}
	s.mu.Lock(p)
	err := s.ensureConn(p)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.startKeepalive()
	return s, nil
}

// Epoch returns the session epoch: how many times the session has
// (re)connected. The first successful dial is epoch 1.
func (s *Session) Epoch() int64 { return s.epoch }

// Stats returns the session's lifecycle counters.
func (s *Session) Stats() SessionStats { return s.stats }

// Conn exposes the current connection (nil between teardown and the
// next reconnect) for inspection.
func (s *Session) Conn() *Conn { return s.conn }

// Close shuts the session down: the keepalive prober stops at its next
// tick and the connection is released.
func (s *Session) Close() {
	s.shut = true
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.down = true
}

// Call performs one RPC over the session. On ErrPeerDown the session
// tears the connection down and reconnects; the call is then replayed
// if opts.Idempotent, and failed with ErrSessionReset otherwise. All
// other outcomes (success, ErrOverloaded, ErrCircuitOpen, ErrDeadline,
// validation errors) pass through unchanged — in particular a breaker
// half-open probe that fails with ErrPeerDown is what converts the
// breaker's recovery attempt into a session reconnect attempt.
func (s *Session) Call(p *sim.Proc, fn uint32, req []byte, opts CallOpts) ([]byte, error) {
	if s.shut {
		return nil, fmt.Errorf("engine: session to node %d: closed", s.target.ID())
	}
	if opts.Deadline == 0 && s.eng.cfg.CallDeadline == 0 {
		// A session call must always fail typed rather than block
		// forever on a dead peer.
		if opts.Deadline = s.cfg.CallDeadline; opts.Deadline <= 0 {
			opts.Deadline = DefaultSessionCallDeadline
		}
	}
	s.mu.Lock(p)
	defer s.mu.Unlock()
	for {
		if err := s.ensureConn(p); err != nil {
			return nil, err
		}
		out, err := s.conn.Call(p, fn, req, opts)
		if err == nil || !errors.Is(err, ErrPeerDown) {
			return out, err
		}
		s.teardown(p)
		if !opts.Idempotent {
			s.stats.Resets++
			return nil, fmt.Errorf("engine: session to node %d epoch %d: %v: %w",
				s.target.ID(), s.epoch, err, ErrSessionReset)
		}
		s.stats.Replays++
		if m := s.eng.em; m != nil {
			m.sessionReplays.Inc()
		}
		s.eng.trc.Instant("session", "replay", s.eng.node.ID(), s.target.ID(),
			int64(p.Now()), obs.Arg{K: "fn", V: fn}, obs.Arg{K: "epoch", V: s.epoch})
	}
}

// ensureConn re-establishes the connection if it is down, pacing
// attempts with doubling backoff. Called with s.mu held.
func (s *Session) ensureConn(p *sim.Proc) error {
	if s.conn != nil && !s.down {
		return nil
	}
	backoff := s.cfg.RedialBackoff
	if backoff <= 0 {
		backoff = DefaultRedialBackoff
	}
	max := s.cfg.MaxRedials
	if max <= 0 {
		max = DefaultMaxRedials
	}
	var lastErr error
	for i := 0; i < max; i++ {
		if i > 0 {
			p.Sleep(backoff)
			backoff *= 2
			if backoff > redialBackoffCapNs {
				backoff = redialBackoffCapNs
			}
		}
		if s.epoch > 0 {
			// Re-establishment attempt after an outage (the first dial of
			// the session's life is a connect, not a redial).
			if m := s.eng.em; m != nil {
				m.sessionRedials.Inc()
			}
		}
		c, err := s.eng.TryDial(p, s.target, s.port, p.Now()+sim.Time(sessionHandshakeTimeoutNs))
		if err != nil {
			lastErr = err
			continue
		}
		if s.epoch > 0 {
			if m := s.eng.em; m != nil {
				m.sessionFailovers.Inc()
			}
		}
		s.conn = c
		s.down = false
		s.epoch++
		s.stats.Connects++
		s.eng.trc.Instant("session", "connect", s.eng.node.ID(), s.target.ID(),
			int64(p.Now()), obs.Arg{K: "epoch", V: s.epoch})
		return nil
	}
	return fmt.Errorf("engine: session to node %d: %d redials failed (%v): %w",
		s.target.ID(), max, lastErr, ErrPeerDown)
}

// teardown discards a connection whose peer is unreachable. Called
// with s.mu held.
func (s *Session) teardown(p *sim.Proc) {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.down = true
	s.eng.trc.Instant("session", "teardown", s.eng.node.ID(), s.target.ID(),
		int64(p.Now()), obs.Arg{K: "epoch", V: s.epoch})
}

// DefaultDrainHoldProbes sizes the default SessionConfig.DrainHold: a
// drain announcement silences this many probe intervals. Long enough to
// cover a typical drain-stop-restart cycle, short enough that the
// prober re-verifies liveness soon after the peer should be back.
const DefaultDrainHoldProbes = 8

// keepaliveFailThreshold is how many consecutive deadline-expired
// probes count as a dead path. One expiry can be a transient drop; a
// streak means the response direction is gone even though our sends
// still complete — the asymmetric-partition case, where the QP never
// errors and ErrPeerDown is never produced.
const keepaliveFailThreshold = 2

// startKeepalive launches the liveness prober as a node-owned process
// (it dies with the client node, like the session's user would). Each
// tick sends one reserved-function probe when the session is idle. A
// probe failing with ErrPeerDown tears the connection down at once;
// keepaliveFailThreshold consecutive ErrDeadline expiries do the same
// (a silent one-way cut never errors the QP, so without this an idle
// session would stay wedged on a half-dead link forever). Either way
// the prober immediately attempts to re-establish, so an idle session
// is usually live again before its next real call. A probe answered
// with the typed ErrDraining announcement instead silences the prober
// for cfg.DrainHold: the peer is leaving on purpose, and probing or
// redialing it during the restart would only manufacture
// session_redials storms.
func (s *Session) startKeepalive() {
	ivl := s.cfg.KeepaliveInterval
	if ivl <= 0 {
		return
	}
	dl := s.cfg.KeepaliveDeadline
	if dl <= 0 {
		dl = DefaultKeepaliveDeadline
	}
	hold := s.cfg.DrainHold
	if hold <= 0 {
		hold = ivl * DefaultDrainHoldProbes
	}
	s.eng.node.Spawn(fmt.Sprintf("session-ka-%d-%s", s.target.ID(), s.port), func(p *sim.Proc) {
		expired := 0 // consecutive probes that died by deadline
		var holdUntil sim.Time
		for {
			p.Sleep(ivl)
			if s.shut {
				return
			}
			if p.Now() < holdUntil {
				continue // peer announced draining; stay quiet
			}
			if !s.mu.TryLock() {
				continue // a call is in flight; it is its own liveness probe
			}
			if s.conn != nil && !s.down {
				s.stats.Probes++
				_, err := s.conn.Call(p, FnKeepalive, nil, CallOpts{Proto: EagerSendRecv, Deadline: dl})
				switch {
				case err == nil:
					expired = 0
				case errors.Is(err, ErrPeerDown):
					expired = 0
					s.teardown(p)
				case errors.Is(err, ErrDraining):
					// The peer fenced the probe: it is draining for a planned
					// restart. Hold off probes AND eager redials — the session
					// stays formally up, and the first post-hold tick (or a
					// real call's typed failure) re-verifies the path.
					expired = 0
					holdUntil = p.Now() + sim.Time(hold)
					s.stats.DrainHolds++
					s.eng.trc.Instant("session", "drain_hold", s.eng.node.ID(), s.target.ID(),
						int64(p.Now()), obs.Arg{K: "epoch", V: s.epoch})
				case errors.Is(err, ErrDeadline):
					if expired++; expired >= keepaliveFailThreshold {
						expired = 0
						s.teardown(p)
					}
				default:
					// ErrOverloaded means the peer answered (alive, just
					// busy); ErrCircuitOpen means our own breaker is gating.
					// Neither says the path is dead.
					expired = 0
				}
			}
			if s.down && !s.shut {
				// Eager re-establishment; failure leaves the session down
				// for the next tick (or the next call) to retry.
				_ = s.ensureConn(p) //nolint:errcheck
			}
			s.mu.Unlock()
		}
	})
}
