package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/verbs"
)

// TestReleaseRndvCapsFreeList exercises the pool cap directly: releasing
// more buffers than RndvPoolCap must keep the free list at the cap and
// hand back the pinned bytes of the dropped overflow.
func TestReleaseRndvCapsFreeList(t *testing.T) {
	env, srvEng, _ := testCluster(40)
	env.Spawn("driver", func(p *sim.Proc) {
		const extra = 5
		var bufs []*verbs.MR
		for i := 0; i < DefaultRndvPoolCap+extra; i++ {
			bufs = append(bufs, srvEng.acquireRndv(p, 10_000))
		}
		cls := sizeClass(10_000)
		peak := srvEng.PinnedBytes()
		if want := int64((DefaultRndvPoolCap + extra) * cls); peak != want {
			t.Errorf("pinned at peak = %d, want %d", peak, want)
		}
		for _, b := range bufs {
			srvEng.releaseRndv(b)
		}
		if n := len(srvEng.rndvFree[cls]); n != DefaultRndvPoolCap {
			t.Errorf("free list holds %d buffers, want cap %d", n, DefaultRndvPoolCap)
		}
		if got, want := srvEng.PinnedBytes(), peak-int64(extra*cls); got != want {
			t.Errorf("pinned after release = %d, want %d (overflow unpinned)", got, want)
		}
		env.Stop()
	})
	env.Run()
}

// TestRndvPoolPlateausMixedSizes is the workload form of the pool-growth
// fix: a client cycling through many rendezvous size classes must drive
// pinned memory to a plateau, not monotonic growth.
func TestRndvPoolPlateausMixedSizes(t *testing.T) {
	env, srvEng, cliEng := testCluster(41)
	srvEng.Serve("svc", echoHandler)
	sizes := []int{8 << 10, 24 << 10, 60 << 10, 130 << 10, 300 << 10}
	var afterWarm, afterMore int64
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		do := func(cycles int) {
			for i := 0; i < cycles; i++ {
				for _, n := range sizes {
					c.Call(p, 1, make([]byte, n), CallOpts{Proto: WriteRNDV, RespProto: DirectWriteIMM, Busy: true})
				}
			}
		}
		do(3)
		afterWarm = srvEng.PinnedBytes() + cliEng.PinnedBytes()
		do(10)
		afterMore = srvEng.PinnedBytes() + cliEng.PinnedBytes()
		env.Stop()
	})
	env.Run()
	if afterWarm == 0 {
		t.Fatal("no pinned memory recorded")
	}
	if afterMore != afterWarm {
		t.Fatalf("pinned memory grew under a steady mixed-size workload: %d → %d", afterWarm, afterMore)
	}
}

// TestCloseReleasesPinnedBytes verifies the teardown path: after closing
// both engines, pinned bytes — also observed through the obs gauge —
// return to the pre-connection baseline (zero).
func TestCloseReleasesPinnedBytes(t *testing.T) {
	env, srvEng, cliEng := testCluster(42)
	r := obs.NewRegistry()
	srvEng.SetObs(r)
	cliEng.SetObs(r)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		// Mix of eager and rendezvous so both conn buffers and the pool
		// hold pinned memory at shutdown.
		c.Call(p, 1, make([]byte, 100), CallOpts{Proto: EagerSendRecv, Busy: true})
		c.Call(p, 1, make([]byte, 100_000), CallOpts{Proto: WriteRNDV, RespProto: DirectWriteIMM, Busy: true})
		env.Stop()
	})
	env.Run()
	if srvEng.PinnedBytes() == 0 || cliEng.PinnedBytes() == 0 {
		t.Fatal("expected pinned memory while connections are open")
	}
	srvEng.Close()
	cliEng.Close()
	if got := srvEng.PinnedBytes(); got != 0 {
		t.Fatalf("server pinned bytes after Close = %d, want 0", got)
	}
	if got := cliEng.PinnedBytes(); got != 0 {
		t.Fatalf("client pinned bytes after Close = %d, want 0", got)
	}
	for _, node := range []int{0, 1} {
		g, ok := r.GaugeValue(fmt.Sprintf("node%d.engine.pinned_bytes", node))
		if !ok {
			t.Fatalf("pinned-bytes gauge for node %d not registered", node)
		}
		if g != 0 {
			t.Fatalf("node %d pinned-bytes gauge after Close = %v, want 0", node, g)
		}
	}
	// Idempotent.
	srvEng.Close()
	cliEng.Close()
}

// onewayProtocols is every request protocol a client can mark oneway.
var onewayProtocols = append(append([]Protocol(nil), dataProtocols...), HybridEagerRead)

// TestOnewayEveryProtocol sends a fire-and-forget request on each
// protocol, then a normal call (which also pumps any trailing control
// traffic, e.g. the Read-RNDV FIN). The server must execute the handler
// for both, respond only to the second, and leave no per-seq control
// state behind.
func TestOnewayEveryProtocol(t *testing.T) {
	for _, proto := range onewayProtocols {
		for _, size := range []int{64, 100_000} {
			name := fmt.Sprintf("%s/size=%d", proto, size)
			t.Run(name, func(t *testing.T) {
				env, srvEng, cliEng := testCluster(43)
				var handled int
				srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
					handled++
					return echoHandler(p, fn, req)
				})
				var conn *Conn
				env.Spawn("client", func(p *sim.Proc) {
					c := cliEng.Dial(p, srvEng.Node(), "svc")
					conn = c
					resp, err := c.Call(p, 7, make([]byte, size), CallOpts{Proto: proto, Oneway: true, Busy: true})
					if err != nil {
						t.Errorf("oneway call: %v", err)
					}
					if resp != nil {
						t.Errorf("oneway call returned %d response bytes", len(resp))
					}
					// Let the oneway finish server-side (for Read-RNDV the
					// server still has to READ the payload and FIN) so the
					// follow-up call's CQ pump consumes its control traffic.
					p.Sleep(5_000_000)
					out, err := c.Call(p, 8, []byte("ping"), CallOpts{Proto: EagerSendRecv, Busy: true})
					if err != nil || string(out) != "ECHOping" {
						t.Errorf("follow-up call: resp=%q err=%v", out, err)
					}
					p.Sleep(100_000) // let server-side accounting settle
					env.Stop()
				})
				env.Run()
				if handled != 2 {
					t.Fatalf("handler ran %d times, want 2", handled)
				}
				if srv.Served != 2 {
					t.Fatalf("Served = %d, want 2 (oneway must count exactly once)", srv.Served)
				}
				if st := conn.Stats(); st.Calls != 2 || st.Oneways != 1 {
					t.Fatalf("conn stats = %+v, want Calls=2 Oneways=1", st)
				}
				// No per-seq residue on either endpoint.
				conns := append([]*Conn{conn}, srv.Conns()...)
				for _, c := range conns {
					side := "client"
					if c.server {
						side = "server"
					}
					if n := len(c.rndvIn) + len(c.rndvOut); n != 0 {
						t.Errorf("%s conn leaks %d rendezvous buffers", side, n)
					}
					if n := len(c.shared.rndv); n != 0 {
						t.Errorf("%s conn leaves %d shared-table entries", side, n)
					}
					if n := len(c.ctsReady) + len(c.frags) + len(c.pendingReads); n != 0 {
						t.Errorf("%s conn leaks control state (cts=%d frags=%d reads=%d)",
							side, len(c.ctsReady), len(c.frags), len(c.pendingReads))
					}
					if n := len(c.respQueue); n != 0 {
						t.Errorf("%s conn has %d stray queued arrivals", side, n)
					}
				}
			})
		}
	}
}

// runObservedWorkload drives a small multi-protocol workload with a
// registry+tracer attached and returns the rendered instrument tables
// plus the trace JSON.
func runObservedWorkload(t *testing.T, seed int64) (string, []byte, *obs.Registry) {
	t.Helper()
	env, srvEng, cliEng := testCluster(seed)
	r := obs.NewRegistry()
	r.SetTracer(obs.NewTracer())
	srvEng.SetObs(r)
	cliEng.SetObs(r)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		c.Call(p, 1, make([]byte, 512), CallOpts{Proto: EagerSendRecv, Busy: true})
		c.Call(p, 2, make([]byte, 100_000), CallOpts{Proto: WriteRNDV, RespProto: DirectWriteIMM, Busy: true})
		c.Call(p, 3, make([]byte, 100_000), CallOpts{Proto: ReadRNDV, RespProto: DirectWriteIMM, Busy: true})
		c.Call(p, 4, []byte("q"), CallOpts{Proto: RFP, Busy: true})
		c.Call(p, 5, make([]byte, 9000), CallOpts{Proto: EagerSendRecv, Oneway: true, Busy: true})
		c.Call(p, 6, []byte("ping"), CallOpts{Proto: EagerSendRecv, Busy: true})
		env.Stop()
	})
	env.Run()
	var buf bytes.Buffer
	if err := r.Tracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return r.Render(), buf.Bytes(), r
}

// TestObsCountersPerProtocol checks the per-protocol counter matrix the
// registry accumulates for a known workload.
func TestObsCountersPerProtocol(t *testing.T) {
	_, trace, r := runObservedWorkload(t, 44)
	wantCalls := map[Protocol]int64{
		EagerSendRecv: 3, // incl. the oneway
		WriteRNDV:     1,
		ReadRNDV:      1,
		RFP:           1,
	}
	for proto, want := range wantCalls {
		if got := r.Counter("engine.calls." + proto.String()).Value(); got != want {
			t.Errorf("engine.calls.%s = %d, want %d", proto, got, want)
		}
		if got := r.Counter("engine.served." + proto.String()).Value(); got != want {
			t.Errorf("engine.served.%s = %d, want %d", proto, got, want)
		}
	}
	if got := r.Counter("engine.oneways").Value(); got != 1 {
		t.Errorf("engine.oneways = %d, want 1", got)
	}
	if got := r.Counter("engine.eager_frags").Value(); got == 0 {
		t.Error("9000-byte eager oneway produced no fragment counts")
	}
	if h := r.Histogram("engine.cts_wait_ns"); h.Sample().N() != 1 {
		t.Errorf("cts_wait observations = %d, want 1 (one Write-RNDV)", h.Sample().N())
	}
	// The trace must be valid JSON with the expected span names present.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{
		"call." + EagerSendRecv.String(),
		"call." + WriteRNDV.String(),
		"oneway." + EagerSendRecv.String(),
		"serve." + EagerSendRecv.String(),
		"cts_wait",
		"register",
		"wr.READ",
	} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}

// TestObsOutputDeterministic runs the identical traced workload twice:
// the rendered tables and the trace JSON must be byte-identical.
func TestObsOutputDeterministic(t *testing.T) {
	render1, trace1, _ := runObservedWorkload(t, 45)
	render2, trace2, _ := runObservedWorkload(t, 45)
	if render1 != render2 {
		t.Fatalf("instrument tables differ across identical runs:\n--- run1\n%s\n--- run2\n%s", render1, render2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("trace JSON differs across identical runs")
	}
	if len(trace1) == 0 || render1 == "" {
		t.Fatal("observed workload produced empty output")
	}
}
