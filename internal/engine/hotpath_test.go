package engine

import (
	"bytes"
	"fmt"
	"testing"

	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// hotConfig is DefaultConfig with every hot-path knob on: batched CQ
// polling, doorbell-batched eager sends, and the payload arena.
func hotConfig() Config {
	cfg := DefaultConfig()
	cfg.PollBudget = 16
	cfg.DoorbellBatch = true
	cfg.ArenaPayloads = true
	return cfg
}

// testClusterCfg is testCluster with an explicit engine config on both
// endpoints.
func testClusterCfg(seed int64, cfg Config) (*sim.Env, *Engine, *Engine) {
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	srv := New(cl.Node(0), cfg)
	cli := New(cl.Node(1), cfg)
	return env, srv, cli
}

// TestAdaptivePollingRoundTrips runs the full protocol matrix with the
// adaptive spin-then-sleep discipline on both endpoints (the
// polling=adaptive hint path).
func TestAdaptivePollingRoundTrips(t *testing.T) {
	sizes := []int{0, 64, 4096, 131072}
	for _, proto := range dataProtocols {
		for _, size := range sizes {
			t.Run(fmt.Sprintf("%s/size=%d", proto, size), func(t *testing.T) {
				env, srvEng, cliEng := testCluster(11)
				srv := srvEng.Serve("svc", echoHandler)
				srv.Poll = PollAdaptiveMode
				req := make([]byte, size)
				for i := range req {
					req[i] = byte(i * 5)
				}
				var resp []byte
				var err error
				env.Spawn("client", func(p *sim.Proc) {
					c := cliEng.Dial(p, srvEng.Node(), "svc")
					// Two calls back to back: the second lands inside the
					// spin window opened by the first wait, exercising the
					// spin-hit path as well as the demotion path.
					if _, err = c.Call(p, 3, req, CallOpts{Proto: proto, Poll: PollAdaptiveMode}); err == nil {
						resp, err = c.Call(p, 3, req, CallOpts{Proto: proto, Poll: PollAdaptiveMode})
					}
					env.Stop()
				})
				env.Run()
				if err != nil {
					t.Fatal(err)
				}
				want := echoHandler(nil, 3, req)
				if !bytes.Equal(resp, want) {
					t.Fatalf("response mismatch: got %d bytes, want %d", len(resp), len(want))
				}
			})
		}
	}
}

// TestHotpathConfigRoundTrips runs the protocol matrix with every
// hot-path knob enabled at once (PollBudget, DoorbellBatch,
// ArenaPayloads) and sequential calls per connection, so arena buffers
// are recycled and reused across ops.
func TestHotpathConfigRoundTrips(t *testing.T) {
	for _, proto := range dataProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			env, srvEng, cliEng := testClusterCfg(12, hotConfig())
			srvEng.Serve("svc", echoHandler)
			calls := 0
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				for i := 0; i < 8; i++ {
					req := []byte(fmt.Sprintf("hot-%s-%02d", proto, i))
					resp, err := c.Call(p, uint32(i), req, CallOpts{Proto: proto, Busy: i%2 == 0})
					if err != nil {
						t.Errorf("call %d: %v", i, err)
						break
					}
					if string(resp) != "ECHO"+string(req) {
						t.Errorf("call %d: got %q", i, resp)
						break
					}
					c.Recycle(resp)
					calls++
				}
				env.Stop()
			})
			env.Run()
			if calls != 8 {
				t.Fatalf("completed %d calls, want 8", calls)
			}
		})
	}
}

// TestPollBudgetDrainsConcurrentBurst pushes a fan-in burst through a
// PollBudget-enabled server: many clients issue calls in the same
// scheduling quantum, so the server pump sees several completions per
// wakeup and must drain them all through PollN.
func TestPollBudgetDrainsConcurrentBurst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PollBudget = 16
	env, srvEng, cliEng := testClusterCfg(13, cfg)
	srv := srvEng.Serve("svc", echoHandler)
	const N = 12
	done := 0
	for i := 0; i < N; i++ {
		i := i
		env.Spawn(fmt.Sprintf("client%d", i), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			for j := 0; j < 4; j++ {
				req := []byte(fmt.Sprintf("c%d-m%d", i, j))
				resp, err := c.Call(p, 1, req, CallOpts{Proto: EagerSendRecv})
				if err != nil || string(resp) != "ECHO"+string(req) {
					t.Errorf("client %d call %d: %q %v", i, j, resp, err)
					return
				}
			}
			done++
			if done == N {
				env.Stop()
			}
		})
	}
	env.Run()
	if done != N {
		t.Fatalf("%d/%d clients finished", done, N)
	}
	if srv.Served != N*4 {
		t.Fatalf("server served %d, want %d", srv.Served, N*4)
	}
}

// TestDoorbellBatchSegmentedNoOp pins the DoorbellBatch scope contract:
// a segmented single message (payload larger than one slot) takes the
// per-fragment path with the flag on or off — chaining a whole fragment
// train would trade the staging/transmit overlap for doorbell savings
// and lose. Responses AND virtual timings must be identical.
func TestDoorbellBatchSegmentedNoOp(t *testing.T) {
	req := make([]byte, 3*4096+123) // several fragments + a tail
	for i := range req {
		req[i] = byte(i * 13)
	}
	run := func(batch bool) ([]byte, sim.Time) {
		cfg := DefaultConfig()
		cfg.DoorbellBatch = batch
		env, srvEng, cliEng := testClusterCfg(14, cfg)
		srvEng.Serve("svc", echoHandler)
		var resp []byte
		var err error
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			resp, err = c.Call(p, 9, req, CallOpts{Proto: EagerSendRecv, Busy: true})
			env.Stop()
		})
		env.Run()
		if err != nil {
			t.Fatal(err)
		}
		return resp, env.Now()
	}
	legacy, legacyEnd := run(false)
	batched, batchedEnd := run(true)
	if !bytes.Equal(legacy, batched) {
		t.Fatalf("batched response differs from legacy: %d vs %d bytes", len(batched), len(legacy))
	}
	if batchedEnd != legacyEnd {
		t.Fatalf("DoorbellBatch changed segmented-message timing: %d vs %d", batchedEnd, legacyEnd)
	}
	if want := echoHandler(nil, 9, req); !bytes.Equal(batched, want) {
		t.Fatalf("batched response corrupt: got %d bytes, want %d", len(batched), len(want))
	}
}

// TestArenaPayloadsRecycleReuse verifies the payload arena actually
// cycles buffers: after a Recycle the class has stock, and a subsequent
// same-shape call draws from it without corrupting the delivered bytes.
func TestArenaPayloadsRecycleReuse(t *testing.T) {
	env, srvEng, cliEng := testClusterCfg(15, hotConfig())
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		req := bytes.Repeat([]byte("x"), 100)
		resp1, err := c.Call(p, 1, req, CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil {
			t.Error(err)
			env.Stop()
			return
		}
		saved := append([]byte(nil), resp1...)
		c.Recycle(resp1)
		cls := payloadClass(len(resp1))
		if len(cliEng.payloadFree[cls]) == 0 {
			t.Errorf("class %d empty after Recycle", cls)
		}
		resp2, err := c.Call(p, 1, req, CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil {
			t.Error(err)
		} else if !bytes.Equal(resp2, saved) {
			t.Errorf("reused-buffer response differs: %q vs %q", resp2, saved)
		}
		env.Stop()
	})
	env.Run()
}

// TestOnewayBurstBatched drives the chained-WR burst path end to end:
// all messages must be served, counted as oneways, and a trailing
// regular call must still round-trip on the same connection.
func TestOnewayBurstBatched(t *testing.T) {
	env, srvEng, cliEng := testClusterCfg(16, hotConfig())
	srv := srvEng.Serve("svc", echoHandler)
	const B = 8
	payloads := make([][]byte, B)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("burst-%02d", i))
	}
	var conn *Conn
	env.Spawn("client", func(p *sim.Proc) {
		conn = cliEng.Dial(p, srvEng.Node(), "svc")
		if err := conn.OnewayBurst(p, 7, payloads, CallOpts{Proto: EagerSendRecv, Busy: true}); err != nil {
			t.Error(err)
		}
		// The sync call flushes behind the burst: by the time its response
		// arrives, every burst message has been dispatched in order.
		resp, err := conn.Call(p, 8, []byte("sync"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOsync" {
			t.Errorf("sync call: %q %v", resp, err)
		}
		env.Stop()
	})
	env.Run()
	if srv.Served != B+1 {
		t.Fatalf("served %d, want %d", srv.Served, B+1)
	}
	st := conn.Stats()
	if st.Oneways != B {
		t.Fatalf("oneways %d, want %d", st.Oneways, B)
	}
	if st.Calls != B+1 {
		t.Fatalf("calls %d, want %d", st.Calls, B+1)
	}
}

// TestOnewayBurstFallback checks the degradation contract: without
// DoorbellBatch (and with an oversize fragment) the burst becomes a loop
// of ordinary oneway Calls with identical observable results.
func TestOnewayBurstFallback(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		big  bool
	}{
		{"no-doorbell-batch", DefaultConfig(), false},
		{"oversize-fragment", hotConfig(), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env, srvEng, cliEng := testClusterCfg(17, tc.cfg)
			srv := srvEng.Serve("svc", echoHandler)
			payloads := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
			if tc.big {
				payloads[1] = make([]byte, 8192) // > slot capacity: multi-fragment
			}
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				if err := c.OnewayBurst(p, 7, payloads, CallOpts{Proto: EagerSendRecv, Busy: true}); err != nil {
					t.Error(err)
				}
				resp, err := c.Call(p, 8, []byte("sync"), CallOpts{Proto: EagerSendRecv, Busy: true})
				if err != nil || string(resp) != "ECHOsync" {
					t.Errorf("sync call: %q %v", resp, err)
				}
				env.Stop()
			})
			env.Run()
			if srv.Served != int64(len(payloads))+1 {
				t.Fatalf("served %d, want %d", srv.Served, len(payloads)+1)
			}
		})
	}
}

// TestFetchPaceDisciplines pins the one-sided result-poll pacing table:
// busy spins at the legacy 600 ns pace until the RC retry budget, event
// paces at the interrupt-wake granularity from the first retry, and
// adaptive spins only for the connection's spin window.
func TestFetchPaceDisciplines(t *testing.T) {
	env, srvEng, cliEng := testCluster(18)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		cm := c.eng.dev.CostModel()
		spin := sim.Duration(fetchSpinPaceMult * cm.PollGranularityNs)
		slow := sim.Duration(cm.InterruptWakeNs)
		for _, tc := range []struct {
			poll PollMode
			spun sim.Duration
			want sim.Duration
		}{
			{PollBusyMode, 0, spin},
			{PollBusyMode, sim.Duration(cm.RetryTimeoutNs) - 1, spin},
			{PollBusyMode, sim.Duration(cm.RetryTimeoutNs), slow},
			{PollEventMode, 0, slow},
			{PollAdaptiveMode, 0, spin},
			{PollAdaptiveMode, c.spinWindow() - 1, spin},
			{PollAdaptiveMode, c.spinWindow(), slow},
		} {
			if got := c.fetchPace(tc.poll, tc.spun); got != tc.want {
				t.Errorf("fetchPace(%v, spun=%d) = %d, want %d", tc.poll, tc.spun, got, tc.want)
			}
		}
		env.Stop()
	})
	env.Run()
}

// TestHotpathKnobsDeterministic runs the same mixed workload twice under
// the full hot-path config and requires identical virtual end times —
// the new knobs are host-memory optimisations plus modelled disciplines,
// both deterministic.
func TestHotpathKnobsDeterministic(t *testing.T) {
	run := func() sim.Time {
		env, srvEng, cliEng := testClusterCfg(19, hotConfig())
		srv := srvEng.Serve("svc", echoHandler)
		srv.Poll = PollAdaptiveMode
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			var bl [][]byte
			for i := 0; i < 6; i++ {
				bl = append(bl, []byte(fmt.Sprintf("b%d", i)))
			}
			if err := c.OnewayBurst(p, 2, bl, CallOpts{Proto: EagerSendRecv}); err != nil {
				t.Error(err)
			}
			for i, proto := range dataProtocols {
				req := []byte(fmt.Sprintf("det-%02d", i))
				resp, err := c.Call(p, uint32(i), req, CallOpts{Proto: proto, Poll: PollAdaptiveMode})
				if err != nil || string(resp) != "ECHO"+string(req) {
					t.Errorf("call %d (%s): %q %v", i, proto, resp, err)
					return
				}
				c.Recycle(resp)
			}
			env.Stop()
		})
		env.Run()
		return env.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual end time differs across runs: %d vs %d", a, b)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: allocs/op on the eager-path Call for every protocol.

// benchCall measures b.N round-trip Calls on one connection inside one
// simulation run, with allocation accounting.
func benchCall(b *testing.B, cfg Config, size int, opts CallOpts, srvPoll PollMode) {
	env, srvEng, cliEng := testClusterCfg(21, cfg)
	srv := srvEng.Serve("svc", benchEchoHandler)
	srv.Poll = srvPoll
	req := make([]byte, size)
	for i := range req {
		req[i] = byte(i)
	}
	b.ReportAllocs()
	var failed error
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		// Warm connection state and the payload arena outside the timer.
		for i := 0; i < 3; i++ {
			if resp, err := c.Call(p, 1, req, opts); err != nil {
				failed = err
				env.Stop()
				return
			} else {
				c.Recycle(resp)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := c.Call(p, 1, req, opts)
			if err != nil {
				failed = err
				break
			}
			c.Recycle(resp)
		}
		b.StopTimer()
		env.Stop()
	})
	env.Run()
	if failed != nil {
		b.Fatal(failed)
	}
}

// benchEchoHandler echoes the request slice itself — no per-op handler
// allocation, so the benchmark isolates the engine's own hot path.
func benchEchoHandler(p *sim.Proc, fn uint32, req []byte) []byte { return req }

// BenchmarkEagerPathCall reports ns/op (host) and allocs/op for a small
// round-trip Call on every protocol under the default config.
func BenchmarkEagerPathCall(b *testing.B) {
	for _, proto := range dataProtocols {
		b.Run(proto.String(), func(b *testing.B) {
			benchCall(b, DefaultConfig(), 64, CallOpts{Proto: proto, Busy: true}, PollFromBusy)
		})
	}
}

// BenchmarkEagerPathCallHotpath is the same workload with every hot-path
// knob on — the before/after pair for the allocation sweep.
func BenchmarkEagerPathCallHotpath(b *testing.B) {
	for _, proto := range dataProtocols {
		b.Run(proto.String(), func(b *testing.B) {
			benchCall(b, hotConfig(), 64, CallOpts{Proto: proto, Poll: PollAdaptiveMode}, PollAdaptiveMode)
		})
	}
}

// BenchmarkOnewayBurst compares the chained-doorbell burst against the
// equivalent loop of oneway Calls.
func BenchmarkOnewayBurst(b *testing.B) {
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i)}, 64)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"batched", hotConfig()},
		{"loop", DefaultConfig()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			env, srvEng, cliEng := testClusterCfg(22, tc.cfg)
			srvEng.Serve("svc", benchEchoHandler)
			b.ReportAllocs()
			var failed error
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				opts := CallOpts{Proto: EagerSendRecv, Busy: true}
				if err := c.OnewayBurst(p, 1, payloads, opts); err != nil {
					failed = err
					env.Stop()
					return
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.OnewayBurst(p, 1, payloads, opts); err != nil {
						failed = err
						break
					}
				}
				b.StopTimer()
				env.Stop()
			})
			env.Run()
			if failed != nil {
				b.Fatal(failed)
			}
		})
	}
}
