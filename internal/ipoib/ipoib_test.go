package ipoib

import (
	"bytes"
	"testing"

	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

func setup(seed int64) (*sim.Env, *simnet.Cluster) {
	env := sim.NewEnv(seed)
	return env, simnet.NewCluster(env, simnet.DefaultConfig())
}

func TestRoundTrip(t *testing.T) {
	env, cl := setup(1)
	env.Spawn("server", func(p *sim.Proc) {
		ln := Listen(cl.Node(0), "svc", nil)
		c := ln.Accept(p)
		for i := 0; i < 3; i++ {
			req := c.Recv(p)
			c.Send(p, append([]byte("echo:"), req...))
		}
	})
	var responses [][]byte
	env.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, cl.Node(1), cl.Node(0), "svc", nil)
		for i := 0; i < 3; i++ {
			resp := c.Call(p, []byte{byte('a' + i)})
			responses = append(responses, resp)
		}
	})
	env.Run()
	if len(responses) != 3 || !bytes.Equal(responses[2], []byte("echo:c")) {
		t.Fatalf("responses = %q", responses)
	}
}

func TestKernelPathIsExpensive(t *testing.T) {
	// A small IPoIB round trip must cost at least the syscall + interrupt
	// constants on both sides (the baseline's defining overhead).
	env, cl := setup(2)
	env.Spawn("server", func(p *sim.Proc) {
		ln := Listen(cl.Node(0), "svc", nil)
		c := ln.Accept(p)
		c.Send(p, c.Recv(p))
	})
	var rtt sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, cl.Node(1), cl.Node(0), "svc", nil)
		start := p.Now()
		c.Call(p, make([]byte, 64))
		rtt = p.Now() - start
	})
	env.Run()
	cm := DefaultCostModel()
	floor := 2*(cm.SyscallNs+cm.InterruptNs) + 2*int64(simnet.DefaultConfig().PropDelayNs)
	if int64(rtt) < floor {
		t.Fatalf("IPoIB RTT %dns below kernel-path floor %dns", rtt, floor)
	}
}

func TestLargeTransferBandwidthDegraded(t *testing.T) {
	// 1MB over IPoIB at ~40Gbps effective must take >200µs one way —
	// several times the raw 100Gbps link time.
	env, cl := setup(3)
	var recvAt sim.Time
	env.Spawn("server", func(p *sim.Proc) {
		ln := Listen(cl.Node(0), "svc", nil)
		c := ln.Accept(p)
		c.Recv(p)
		recvAt = p.Now()
	})
	var sendStart sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, cl.Node(1), cl.Node(0), "svc", nil)
		sendStart = p.Now()
		c.Send(p, make([]byte, 1<<20))
	})
	env.Run()
	elapsed := int64(recvAt - sendStart)
	if elapsed < 200_000 {
		t.Fatalf("1MB over IPoIB in %dns; effective bandwidth too high for the baseline", elapsed)
	}
}

func TestPayloadIntegrity(t *testing.T) {
	env, cl := setup(4)
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	env.Spawn("server", func(p *sim.Proc) {
		ln := Listen(cl.Node(0), "svc", nil)
		c := ln.Accept(p)
		got = c.Recv(p)
	})
	env.Spawn("client", func(p *sim.Proc) {
		c := Dial(p, cl.Node(1), cl.Node(0), "svc", nil)
		c.Send(p, payload)
	})
	env.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in flight")
	}
}

func TestMultipleConnectionsIndependent(t *testing.T) {
	env, cl := setup(5)
	env.Spawn("server", func(p *sim.Proc) {
		ln := Listen(cl.Node(0), "svc", nil)
		for i := 0; i < 2; i++ {
			conn := ln.Accept(p)
			env.Spawn("handler", func(hp *sim.Proc) {
				for {
					conn.Send(hp, conn.Recv(hp))
				}
			})
		}
	})
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("client", func(p *sim.Proc) {
			c := Dial(p, cl.Node(1+i), cl.Node(0), "svc", nil)
			for j := 0; j < 4; j++ {
				msg := []byte{byte(i), byte(j)}
				resp := c.Call(p, msg)
				if !bytes.Equal(resp, msg) {
					t.Errorf("client %d: cross-connection mixup: %v", i, resp)
					return
				}
			}
			done++
		})
	}
	env.Run()
	if done != 2 {
		t.Fatalf("%d clients finished", done)
	}
}

// TestFaultLossBecomesDelay: under injected packet loss TCP retransmits —
// every message is still delivered, in order, the run is seed-deterministic,
// and lossy runs take strictly longer than lossless ones.
func TestFaultLossBecomesDelay(t *testing.T) {
	run := func(loss float64) (sim.Time, int) {
		env, cl := setup(7)
		cl.InstallFaults(simnet.FaultConfig{DropProb: loss})
		const msgs = 40
		env.Spawn("server", func(p *sim.Proc) {
			ln := Listen(cl.Node(0), "svc", nil)
			c := ln.Accept(p)
			for i := 0; i < msgs; i++ {
				c.Send(p, append([]byte("r:"), c.Recv(p)...))
			}
		})
		got := 0
		var done sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			c := Dial(p, cl.Node(1), cl.Node(0), "svc", nil)
			for i := 0; i < msgs; i++ {
				resp := c.Call(p, []byte{byte(i)})
				if len(resp) != 3 || resp[2] != byte(i) {
					t.Errorf("msg %d: bad response %v", i, resp)
					return
				}
				got++
			}
			done = p.Now()
		})
		env.Run()
		return done, got
	}
	cleanT, cleanN := run(0)
	lossyT, lossyN := run(0.05)
	if cleanN != 40 || lossyN != 40 {
		t.Fatalf("delivered %d/%d messages, want 40/40 (TCP must not lose data)", cleanN, lossyN)
	}
	if lossyT <= cleanT {
		t.Fatalf("lossy run (%d) not slower than clean run (%d)", lossyT, cleanT)
	}
	againT, _ := run(0.05)
	if againT != lossyT {
		t.Fatalf("lossy run nondeterministic: %d vs %d", lossyT, againT)
	}
}
