// Package ipoib models IP-over-InfiniBand socket communication — the
// transport under the paper's vanilla "Thrift over IPoIB" baseline. IPoIB
// runs the kernel TCP/IP stack over the IB link: every message pays
// syscall entry, a user↔kernel copy on each side, interrupt-driven
// receive wakeup, and an effective bandwidth well below line rate
// (protocol overhead plus per-packet kernel work).
package ipoib

import (
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// CostModel holds the IPoIB kernel-path constants.
type CostModel struct {
	// SyscallNs is send/recv syscall entry+exit CPU cost.
	SyscallNs int64
	// CopyBytesPerNs is user↔kernel copy bandwidth.
	CopyBytesPerNs float64
	// InterruptNs is the receive-side softirq+wakeup cost.
	InterruptNs int64
	// EffectiveGbps is achievable IPoIB goodput (the paper's testbed saw
	// far below the 100 Gbps line rate; ~40 Gbps is typical for IPoIB on
	// EDR with connected mode).
	EffectiveGbps float64
	// PerPacketNs is kernel per-MTU-packet processing; charged per 64 KB
	// segment as a coarse aggregate.
	PerPacketNs int64
}

// DefaultCostModel returns IPoIB constants for the paper's EDR fabric.
func DefaultCostModel() *CostModel {
	return &CostModel{
		SyscallNs:      700,
		CopyBytesPerNs: 8.0,
		InterruptNs:    5000,
		EffectiveGbps:  40,
		PerPacketNs:    1500,
	}
}

// message is one framed payload in flight.
type message struct {
	data []byte
}

// Conn is one side of an established IPoIB (TCP) connection carrying
// framed messages.
type Conn struct {
	node  *simnet.Node
	peer  *Conn
	in    *sim.Queue[message]
	cm    *CostModel
	numaB bool

	// Optional observability (nil = off; instruments are nil-safe).
	msgsSent   *obs.Counter
	bytesSent  *obs.Counter
	msgsRecvd  *obs.Counter
	bytesRecvd *obs.Counter
	retrans    *obs.Counter
	trc        *obs.Tracer
}

// TCP retransmission pacing under fault injection: a segment lost by the
// fabric is resent by the kernel after the RTO, which doubles per loss up
// to the cap. The application only ever observes added latency — TCP's
// reliability is part of the baseline being compared against.
const (
	tcpRTONs    = 200_000   // initial retransmission timeout
	tcpRTOCapNs = 1_600_000 // RTO backoff ceiling
)

// SetNUMABound marks this endpoint's copies as NUMA-local.
func (c *Conn) SetNUMABound(b bool) { c.numaB = b }

// SetObs attaches observability counters (ipoib.msgs_sent and friends)
// and, when the registry carries a tracer, kernel-path send/recv spans.
// Pass nil to detach.
func (c *Conn) SetObs(r *obs.Registry) {
	if r == nil {
		c.msgsSent, c.bytesSent, c.msgsRecvd, c.bytesRecvd, c.retrans, c.trc = nil, nil, nil, nil, nil, nil
		return
	}
	c.msgsSent = r.Counter("ipoib.msgs_sent")
	c.bytesSent = r.Counter("ipoib.bytes_sent")
	c.msgsRecvd = r.Counter("ipoib.msgs_recvd")
	c.bytesRecvd = r.Counter("ipoib.bytes_recvd")
	c.retrans = r.Counter("ipoib.retransmits")
	c.trc = r.Tracer()
}

// Node returns the local node.
func (c *Conn) Node() *simnet.Node { return c.node }

// bwBytesPerNs converts the effective rate.
func (cm *CostModel) bwBytesPerNs() float64 { return cm.EffectiveGbps / 8.0 }

// Send ships one framed message, charging the sender-side kernel path and
// wire serialization. Delivery is asynchronous.
func (c *Conn) Send(p *sim.Proc, data []byte) {
	start := int64(p.Now())
	c.msgsSent.Inc()
	c.bytesSent.Add(int64(len(data)))
	cpu := c.node.CPU
	cm := c.cm
	// Syscall + user→kernel copy.
	work := sim.Duration(cm.SyscallNs + int64(float64(len(data))/cm.CopyBytesPerNs))
	segs := int64(len(data)/65536 + 1)
	work += sim.Duration(segs * cm.PerPacketNs)
	cpu.Compute(p, c.node.NUMAWork(work, c.numaB))

	// Wire: IPoIB shares the IB link but at degraded effective bandwidth;
	// model by inflating the occupancy of the TX/RX gates.
	lineBpn := c.node.Cluster().Config().LinkGbps / 8.0
	inflated := int(float64(len(data)+80) * lineBpn / cm.bwBytesPerNs())
	c.node.TX.Transmit(p, inflated)
	env := p.Env()
	peer := c.peer
	msg := message{data: append([]byte(nil), data...)}
	prop := c.node.Cluster().PropDelay()
	if fp := c.node.Cluster().Faults(); fp != nil {
		// Fault injection: the same per-hop drop/jitter model the RDMA
		// path sees, but surfaced with TCP semantics — a lost segment is
		// retransmitted by the kernel after the RTO (doubling per loss),
		// so the application observes delay, never loss.
		from, to := c.node.ID(), peer.node.ID()
		var attempt func(rto sim.Duration)
		attempt = func(rto sim.Duration) {
			drop, extra := fp.Outcome(from, to)
			if drop {
				c.retrans.Inc()
				next := rto * 2
				if next > tcpRTOCapNs {
					next = tcpRTOCapNs
				}
				env.After(rto, func() { attempt(next) })
				return
			}
			// The retransmitted segment re-occupies the wire.
			txDone := c.node.TX.Reserve(env.Now(), inflated)
			env.At(txDone+sim.Time(prop+extra), func() {
				rxDone := peer.node.RX.Reserve(env.Now(), inflated)
				env.At(rxDone, func() { peer.in.Push(msg) })
			})
		}
		drop, extra := fp.Outcome(from, to)
		if drop {
			c.retrans.Inc()
			env.After(tcpRTONs, func() { attempt(2 * tcpRTONs) })
		} else {
			env.After(prop+extra, func() {
				rxDone := peer.node.RX.Reserve(env.Now(), inflated)
				env.At(rxDone, func() { peer.in.Push(msg) })
			})
		}
	} else {
		env.After(prop, func() {
			rxDone := peer.node.RX.Reserve(env.Now(), inflated)
			env.At(rxDone, func() { peer.in.Push(msg) })
		})
	}
	c.trc.Complete("ipoib", "send", c.node.ID(), 0, start, int64(p.Now()),
		obs.Arg{K: "bytes", V: len(data)})
}

// Recv blocks until a framed message arrives, charging the receive-side
// interrupt wakeup and kernel→user copy.
func (c *Conn) Recv(p *sim.Proc) []byte {
	m := c.in.Pop(p)
	start := int64(p.Now())
	cpu := c.node.CPU
	cm := c.cm
	wake := sim.Duration(float64(cm.InterruptNs) * cpu.LoadFactor())
	p.Sleep(wake)
	work := sim.Duration(cm.SyscallNs + int64(float64(len(m.data))/cm.CopyBytesPerNs))
	cpu.Compute(p, c.node.NUMAWork(work, c.numaB))
	c.msgsRecvd.Inc()
	c.bytesRecvd.Add(int64(len(m.data)))
	c.trc.Complete("ipoib", "recv", c.node.ID(), 0, start, int64(p.Now()),
		obs.Arg{K: "bytes", V: len(m.data)})
	return m.data
}

// Call sends a request and blocks for the single response (the framed
// Thrift RPC pattern).
func (c *Conn) Call(p *sim.Proc, data []byte) []byte {
	c.Send(p, data)
	return c.Recv(p)
}

// Listener accepts IPoIB connections.
type Listener struct {
	node *simnet.Node
	l    *simnet.Listener
	cm   *CostModel
}

// Listen opens a TCP-style listener on the node.
func Listen(node *simnet.Node, port string, cm *CostModel) *Listener {
	if cm == nil {
		cm = DefaultCostModel()
	}
	return &Listener{node: node, l: node.Listen("ipoib:" + port), cm: cm}
}

// Accept blocks for a connection; the returned Conn is the server side.
func (ln *Listener) Accept(p *sim.Proc) *Conn {
	ep := ln.l.Accept(p)
	c := &Conn{node: ln.node, cm: ln.cm, in: sim.NewQueue[message](p.Env())}
	// Exchange conn pointers over the handshake channel.
	peer := ep.Recv(p).(*Conn)
	c.peer = peer
	peer.peer = c
	ep.Send(p, c, 16)
	return c
}

// Dial connects to an IPoIB listener on the target node.
func Dial(p *sim.Proc, from, to *simnet.Node, port string, cm *CostModel) *Conn {
	if cm == nil {
		cm = DefaultCostModel()
	}
	ep := from.Connect(p, to, "ipoib:"+port)
	c := &Conn{node: from, cm: cm, in: sim.NewQueue[message](p.Env())}
	ep.Send(p, c, 16)
	srv := ep.Recv(p).(*Conn)
	if srv.peer != c {
		panic(fmt.Sprintf("ipoib: handshake mismatch on %s", port))
	}
	return c
}
