package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("N=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if p := s.Percentile(50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := s.Percentile(25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(4)
	if d := s.Stddev(); math.Abs(d-1) > 1e-9 {
		t.Fatalf("stddev = %v", d)
	}
	var one Sample
	one.Add(7)
	if one.Stddev() != 0 {
		t.Fatal("single sample stddev should be 0")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1)
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 after re-add = %v", p)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{0, "0B"},
		{4, "4B"},
		{512, "512B"},
		{1023, "1023B"},
		{1 << 10, "1KB"},
		{4096, "4KB"},
		{5000, "5000B"}, // not a whole KB multiple
		{131072, "128KB"},
		{1 << 20, "1MB"},
		{3 << 20, "3MB"},
		{(1 << 20) + 1024, "1025KB"}, // whole KB but not whole MB
		{1 << 30, "1GB"},             // GB tier (used to render as 1024MB)
		{2 << 30, "2GB"},
		{(1 << 30) + (1 << 20), "1025MB"}, // whole MB but not whole GB
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatNs(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{999, "999ns"},
		{1000, "1.00µs"},
		{1500, "1.50µs"},
		{999999, "1000.00µs"},
		{1e6, "1.00ms"},
		{2500000, "2.50ms"},
		{1e9, "1.00s"},
		{3e9, "3.00s"},
	}
	for _, c := range cases {
		if got := FormatNs(c.ns); got != c.want {
			t.Errorf("FormatNs(%v) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	mk := func(vs ...float64) *Sample {
		var s Sample
		for _, v := range vs {
			s.Add(v)
		}
		return &s
	}
	cases := []struct {
		name string
		s    *Sample
		p    float64
		want float64
	}{
		{"empty", mk(), 50, 0},
		{"empty-p0", mk(), 0, 0},
		{"empty-p100", mk(), 100, 0},
		{"single-p0", mk(42), 0, 42},
		{"single-p50", mk(42), 50, 42},
		{"single-p100", mk(42), 100, 42},
		{"pair-p0", mk(10, 20), 0, 10},
		{"pair-p50-interpolates", mk(10, 20), 50, 15},
		{"pair-p100", mk(10, 20), 100, 20},
		{"p-below-zero-clamps", mk(10, 20), -5, 10},
		{"p-above-hundred-clamps", mk(10, 20), 150, 20},
		{"quartile-interpolation", mk(5, 1, 3, 2, 4), 25, 2},
		{"p75-interpolation", mk(1, 2, 3, 4), 75, 3.25},
		{"p99-near-max", mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 99, 9.91},
	}
	for _, c := range cases {
		if got := c.s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Percentile(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("proto", "size", "lat")
	tb.Row("Eager", "512B", 3.14159)
	tb.Row("Direct-WriteIMM", "128KB", 42)
	out := tb.String()
	if !strings.Contains(out, "Direct-WriteIMM") || !strings.Contains(out, "3.14") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	// Separator under headers.
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("no separator: %q", lines[1])
	}
}
