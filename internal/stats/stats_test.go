package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("N=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if p := s.Percentile(50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := s.Percentile(25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(4)
	if d := s.Stddev(); math.Abs(d-1) > 1e-9 {
		t.Fatalf("stddev = %v", d)
	}
	var one Sample
	one.Add(7)
	if one.Stddev() != 0 {
		t.Fatal("single sample stddev should be 0")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1)
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 after re-add = %v", p)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		4: "4B", 512: "512B", 4096: "4KB", 131072: "128KB", 1 << 20: "1MB", 5000: "5000B",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatNs(t *testing.T) {
	cases := map[float64]string{
		500:     "500ns",
		1500:    "1.50µs",
		2500000: "2.50ms",
		3e9:     "3.00s",
	}
	for ns, want := range cases {
		if got := FormatNs(ns); got != want {
			t.Errorf("FormatNs(%v) = %q, want %q", ns, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("proto", "size", "lat")
	tb.Row("Eager", "512B", 3.14159)
	tb.Row("Direct-WriteIMM", "128KB", 42)
	out := tb.String()
	if !strings.Contains(out, "Direct-WriteIMM") || !strings.Contains(out, "3.14") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	// Separator under headers.
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("no separator: %q", lines[1])
	}
}
