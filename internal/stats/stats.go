// Package stats provides the small measurement toolkit the benchmark
// harnesses share: sample collection with percentiles, throughput
// accounting, and plain-text table rendering for the figure outputs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample collects latency observations (nanoseconds).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for empty samples).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, v := range s.xs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	m := math.Inf(-1)
	if len(s.xs) == 0 {
		return 0
	}
	for _, v := range s.xs {
		if v > m {
			m = v
		}
	}
	return m
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[lo]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.xs {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.xs)))
}

// ---------------------------------------------------------------------------

// FormatBytes renders a size label (512B, 4KB, 128KB, 1GB ...).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatNs renders a duration in adaptive units.
func FormatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// ---------------------------------------------------------------------------

// Table renders aligned plain-text tables for the figure outputs.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends a row; values are rendered with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
