package codegen

import (
	"go/format"
	"strings"
	"testing"

	"hatrpc/internal/idl"
)

const testIDL = `
namespace go testsvc

typedef i64 Timestamp
const i32 MAX_BATCH = 10

enum Status {
  OK = 0,
  NOT_FOUND = 5,
}

struct KVPair {
  1: string key,
  2: binary value,
  3: Timestamp ts,
  4: Status st,
  5: list<i32> tags,
  6: map<string, double> weights,
  7: set<i64> ids,
}

exception KVError {
  1: string message,
  2: i32 code,
}

service KVStore {
  hint: concurrency=128, perf_goal=throughput;
  s_hint: numa=bind;

  binary Get(1: string key) throws (1: KVError err)
    [ hint: payload_size=1024; c_hint: perf_goal=latency; ]
  void Put(1: string key, 2: binary value)
  list<KVPair> Scan(1: string prefix, 2: i32 limit)
  oneway void Log(1: string msg)
}
`

func generate(t *testing.T) string {
	t.Helper()
	doc, warns, err := idl.Parse("test.hrpc", testIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	code, err := Generate(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestGeneratedCodeParsesAsGo(t *testing.T) {
	code := generate(t)
	if _, err := format.Source([]byte(code)); err != nil {
		// Dump a window around the failure for debugging.
		t.Fatalf("generated code does not parse: %v\n----\n%s", err, code)
	}
}

func TestGeneratedCodeDeterministic(t *testing.T) {
	a := generate(t)
	b := generate(t)
	if a != b {
		t.Fatal("generator output is not deterministic")
	}
}

func TestGeneratedSymbols(t *testing.T) {
	code := generate(t)
	for _, sym := range []string{
		"package testsvc",
		"type Timestamp = int64",
		"const MAX_BATCH = 10",
		"type Status int32",
		"Status_NOT_FOUND Status = 5",
		"type KVPair struct {",
		"type KVError struct {",
		"func (x *KVError) Error() string",
		"type KVStoreHandler interface {",
		"Get(p *sim.Proc, key_ string) ([]byte, error)",
		"Put(p *sim.Proc, key_ string, value_ []byte) error",
		"Scan(p *sim.Proc, prefix_ string, limit_ int32) ([]*KVPair, error)",
		"Log(p *sim.Proc, msg_ string) error",
		"type KVStoreClient struct {",
		"func NewKVStoreClient(t trdma.Transport) *KVStoreClient",
		"type KVStoreProcessor struct {",
		"func (pr *KVStoreProcessor) ProcessBytes(p *sim.Proc, fnID uint32, req []byte) []byte",
		"var KVStoreHints = &trdma.ServiceHints{",
		`"concurrency": "128"`,
		`"numa": "bind"`,
		`"perf_goal": "latency"`,
		`"Get": 1,`,
		`"Log": true,`,
	} {
		if !strings.Contains(code, sym) {
			t.Errorf("generated code missing %q", sym)
		}
	}
}

func TestGeneratedHintTableStructure(t *testing.T) {
	code := generate(t)
	// Function-level hints must live in the Functions map, not the
	// service set.
	idx := strings.Index(code, "Functions: map[string]*hints.Set{")
	if idx < 0 {
		t.Fatal("no Functions map")
	}
	if !strings.Contains(code[idx:], `"payload_size": "1024"`) {
		t.Error("Get's payload_size hint missing from function map")
	}
}

func TestServiceInheritanceRejected(t *testing.T) {
	doc := idl.MustParse("x.hrpc", `service Child extends Base { void F() }`)
	if _, err := Generate(doc, Options{}); err == nil {
		t.Fatal("extends accepted")
	}
}

func TestDefaultPackageName(t *testing.T) {
	doc := idl.MustParse("x.hrpc", `service S { void F() }`)
	code, err := Generate(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "package gen") {
		t.Error("default package name not applied")
	}
	code, err = Generate(doc, Options{Package: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "package custom") {
		t.Error("explicit package name not applied")
	}
}

func TestNestedContainersGenerate(t *testing.T) {
	doc := idl.MustParse("n.hrpc", `
struct Deep {
  1: map<string, list<map<i32, binary>>> layers,
}
service S { Deep Roundtrip(1: Deep d) }
`)
	code, err := Generate(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := format.Source([]byte(code)); err != nil {
		t.Fatalf("nested container code does not parse: %v", err)
	}
}
