package codegen

import (
	"fmt"

	"hatrpc/internal/idl"
)

// genService emits the handler interface, typed client, processor, and
// hint table for one service.
func (g *gen) genService(svc *idl.Service) error {
	if svc.Extends != "" {
		return fmt.Errorf("codegen: service inheritance (%s extends %s) is not supported", svc.Name, svc.Extends)
	}
	for _, fn := range svc.Functions {
		g.genArgsStruct(svc, fn)
		if !fn.Oneway {
			g.genResultStruct(svc, fn)
		}
	}
	g.genHandlerInterface(svc)
	g.genClient(svc)
	g.genProcessor(svc)
	g.genHintTable(svc)
	return nil
}

func argsStructName(svc *idl.Service, fn *idl.Function) string {
	return fmt.Sprintf("%s%sArgs", lowerFirst(svc.Name), goName(fn.Name))
}

func resultStructName(svc *idl.Service, fn *idl.Function) string {
	return fmt.Sprintf("%s%sResult", lowerFirst(svc.Name), goName(fn.Name))
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]|0x20) + s[1:]
}

// genArgsStruct emits the internal argument carrier as a synthetic IDL
// struct.
func (g *gen) genArgsStruct(svc *idl.Service, fn *idl.Function) {
	s := &idl.Struct{Name: argsStructName(svc, fn), Fields: fn.Args}
	g.genPlainStruct(s)
}

// genResultStruct emits the internal result carrier: field 0 success (if
// non-void) plus the declared throws fields.
func (g *gen) genResultStruct(svc *idl.Service, fn *idl.Function) {
	name := resultStructName(svc, fn)
	g.pf("type %s struct {\n", name)
	if fn.Returns != nil {
		g.pf("\tSuccess %s\n", g.goType(fn.Returns))
		g.pf("\tSuccessSet bool\n")
	}
	for _, th := range fn.Throws {
		g.pf("\t%s %s\n", goName(th.Name), g.goType(th.Type))
	}
	g.pf("}\n\n")

	// Write
	g.pf("func (x *%s) Write(p thrift.TProtocol) error {\n", name)
	g.pf("\tif err := p.WriteStructBegin(%q); err != nil {\n\t\treturn err\n\t}\n", name)
	if fn.Returns != nil {
		g.pf("\tif x.SuccessSet {\n")
		g.pf("\t\tif err := p.WriteFieldBegin(\"success\", %s, 0); err != nil {\n\t\t\treturn err\n\t\t}\n", g.ttype(fn.Returns))
		g.genWriteValue("x.Success", fn.Returns, 2)
		g.pf("\t\tif err := p.WriteFieldEnd(); err != nil {\n\t\t\treturn err\n\t\t}\n")
		g.pf("\t}\n")
	}
	for _, th := range fn.Throws {
		g.pf("\tif x.%s != nil {\n", goName(th.Name))
		g.pf("\t\tif err := p.WriteFieldBegin(%q, %s, %d); err != nil {\n\t\t\treturn err\n\t\t}\n", th.Name, g.ttype(th.Type), th.ID)
		g.genWriteValue("x."+goName(th.Name), th.Type, 2)
		g.pf("\t\tif err := p.WriteFieldEnd(); err != nil {\n\t\t\treturn err\n\t\t}\n")
		g.pf("\t}\n")
	}
	g.pf("\tif err := p.WriteFieldStop(); err != nil {\n\t\treturn err\n\t}\n")
	g.pf("\treturn p.WriteStructEnd()\n}\n\n")

	// Read
	g.pf("func (x *%s) Read(p thrift.TProtocol) error {\n", name)
	g.pf("\tif _, err := p.ReadStructBegin(); err != nil {\n\t\treturn err\n\t}\n")
	g.pf("\tfor {\n")
	g.pf("\t\t_, ft, id, err := p.ReadFieldBegin()\n")
	g.pf("\t\tif err != nil {\n\t\t\treturn err\n\t\t}\n")
	g.pf("\t\tif ft == thrift.STOP {\n\t\t\tbreak\n\t\t}\n")
	if fn.Returns == nil && len(fn.Throws) == 0 {
		g.pf("\t\t_ = id\n")
	}
	g.pf("\t\tswitch {\n")
	if fn.Returns != nil {
		g.pf("\t\tcase id == 0 && ft == %s:\n", g.ttype(fn.Returns))
		g.genReadValue("x.Success", fn.Returns, 3)
		g.pf("\t\t\tx.SuccessSet = true\n")
	}
	for _, th := range fn.Throws {
		g.pf("\t\tcase id == %d && ft == %s:\n", th.ID, g.ttype(th.Type))
		g.genReadValue("x."+goName(th.Name), th.Type, 3)
	}
	g.pf("\t\tdefault:\n\t\t\tif err := thrift.Skip(p, ft); err != nil {\n\t\t\t\treturn err\n\t\t\t}\n")
	g.pf("\t\t}\n")
	g.pf("\t\tif err := p.ReadFieldEnd(); err != nil {\n\t\t\treturn err\n\t\t}\n")
	g.pf("\t}\n")
	g.pf("\treturn p.ReadStructEnd()\n}\n\n")
}

// genPlainStruct emits a non-exported struct with Write/Read (args
// carriers).
func (g *gen) genPlainStruct(s *idl.Struct) {
	g.pf("type %s struct {\n", s.Name)
	for _, f := range s.Fields {
		g.pf("\t%s %s\n", goName(f.Name), g.goType(f.Type))
	}
	g.pf("}\n\n")
	g.genStructWrite(s)
	g.genStructRead(s)
}

// fnSignature renders the Go signature pieces for a function.
func (g *gen) fnParams(fn *idl.Function) string {
	var parts []string
	for _, a := range fn.Args {
		parts = append(parts, fmt.Sprintf("%s %s", lowerFirst(a.Name)+"_", g.goType(a.Type)))
	}
	return joinComma(parts)
}

func (g *gen) fnReturns(fn *idl.Function) string {
	if fn.Oneway {
		return "error"
	}
	if fn.Returns == nil {
		return "error"
	}
	return fmt.Sprintf("(%s, error)", g.goType(fn.Returns))
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

func (g *gen) genHandlerInterface(svc *idl.Service) {
	g.pf("// %sHandler is the application-side interface for service %s.\n", svc.Name, svc.Name)
	g.pf("type %sHandler interface {\n", svc.Name)
	for _, fn := range svc.Functions {
		params := "p *sim.Proc"
		if ps := g.fnParams(fn); ps != "" {
			params += ", " + ps
		}
		g.pf("\t%s(%s) %s\n", goName(fn.Name), params, g.fnReturns(fn))
	}
	g.pf("}\n\n")
}

func (g *gen) genClient(svc *idl.Service) {
	cn := svc.Name + "Client"
	g.pf("// %s is the generated typed client for service %s.\n", cn, svc.Name)
	g.pf("type %s struct {\n\tT trdma.Transport\n\tseq int32\n}\n\n", cn)
	g.pf("// New%s wraps a transport in the typed client.\n", cn)
	g.pf("func New%s(t trdma.Transport) *%s {\n\treturn &%s{T: t}\n}\n\n", cn, cn, cn)

	for _, fn := range svc.Functions {
		gn := goName(fn.Name)
		params := "p *sim.Proc"
		if ps := g.fnParams(fn); ps != "" {
			params += ", " + ps
		}
		g.pf("// %s invokes %s.%s.\n", gn, svc.Name, fn.Name)
		g.pf("func (c *%s) %s(%s) %s {\n", cn, gn, params, g.fnReturns(fn))

		zero := ""
		retErr := func(errExpr string) string {
			if fn.Oneway || fn.Returns == nil {
				return "return " + errExpr
			}
			return fmt.Sprintf("return %s, %s", zero, errExpr)
		}
		if fn.Returns != nil {
			g.pf("\tvar zero %s\n", g.goType(fn.Returns))
			zero = "zero"
		}
		msgType := "thrift.CALL"
		if fn.Oneway {
			msgType = "thrift.ONEWAY"
		}
		g.pf("\tc.seq++\n")
		g.pf("\tbuf := thrift.NewTMemoryBuffer()\n")
		g.pf("\tw := thrift.NewTBinaryProtocol(buf)\n")
		g.pf("\tif err := w.WriteMessageBegin(%q, %s, c.seq); err != nil {\n\t\t%s\n\t}\n", fn.Name, msgType, retErr("err"))
		g.pf("\targs := %s{", argsStructName(svc, fn))
		for i, a := range fn.Args {
			if i > 0 {
				g.pf(", ")
			}
			g.pf("%s: %s", goName(a.Name), lowerFirst(a.Name)+"_")
		}
		g.pf("}\n")
		g.pf("\tif err := args.Write(w); err != nil {\n\t\t%s\n\t}\n", retErr("err"))
		g.pf("\tif err := w.WriteMessageEnd(); err != nil {\n\t\t%s\n\t}\n", retErr("err"))
		if fn.Oneway {
			g.pf("\t_, err := c.T.Invoke(p, %q, buf.Bytes(), true)\n", fn.Name)
			g.pf("\treturn err\n}\n\n")
			continue
		}
		g.pf("\trespBytes, err := c.T.Invoke(p, %q, buf.Bytes(), false)\n", fn.Name)
		g.pf("\tif err != nil {\n\t\t%s\n\t}\n", retErr("err"))
		g.pf("\tr := thrift.NewTBinaryProtocol(thrift.NewTMemoryBufferWith(respBytes))\n")
		g.pf("\t_, mt, _, err := r.ReadMessageBegin()\n")
		g.pf("\tif err != nil {\n\t\t%s\n\t}\n", retErr("err"))
		g.pf("\tif mt == thrift.EXCEPTION {\n")
		g.pf("\t\tvar ex thrift.TApplicationException\n")
		g.pf("\t\tif err := ex.Read(r); err != nil {\n\t\t\t%s\n\t\t}\n", retErr("err"))
		g.pf("\t\t%s\n\t}\n", retErr("&ex"))
		g.pf("\tvar result %s\n", resultStructName(svc, fn))
		g.pf("\tif err := result.Read(r); err != nil {\n\t\t%s\n\t}\n", retErr("err"))
		for _, th := range fn.Throws {
			g.pf("\tif result.%s != nil {\n\t\t%s\n\t}\n", goName(th.Name), retErr("result."+goName(th.Name)))
		}
		if fn.Returns != nil {
			g.pf("\tif !result.SuccessSet {\n\t\treturn zero, thrift.NewApplicationException(thrift.ExcMissingResult, %q)\n\t}\n", fn.Name+" returned no result")
			g.pf("\treturn result.Success, nil\n}\n\n")
		} else {
			g.pf("\treturn nil\n}\n\n")
		}
	}
}

func (g *gen) genProcessor(svc *idl.Service) {
	pn := svc.Name + "Processor"
	g.pf("// %s dispatches framed requests to a handler.\n", pn)
	g.pf("type %s struct {\n\th %sHandler\n}\n\n", pn, svc.Name)
	g.pf("// New%s wraps a handler.\nfunc New%s(h %sHandler) *%s {\n\treturn &%s{h: h}\n}\n\n", pn, pn, svc.Name, pn, pn)

	g.pf("// ProcessBytes decodes one request, invokes the handler, and returns\n")
	g.pf("// the framed response (nil for oneway).\n")
	g.pf("func (pr *%s) ProcessBytes(p *sim.Proc, fnID uint32, req []byte) []byte {\n", pn)
	g.pf("\tr := thrift.NewTBinaryProtocol(thrift.NewTMemoryBufferWith(req))\n")
	g.pf("\tname, _, seq, err := r.ReadMessageBegin()\n")
	g.pf("\tif err != nil {\n\t\treturn %sEncodeException(name, seq, thrift.ExcProtocolError, err.Error())\n\t}\n", lowerFirst(svc.Name))
	g.pf("\tswitch name {\n")
	for _, fn := range svc.Functions {
		g.pf("\tcase %q:\n", fn.Name)
		g.pf("\t\treturn pr.handle%s(p, r, seq)\n", goName(fn.Name))
	}
	g.pf("\t}\n")
	g.pf("\treturn %sEncodeException(name, seq, thrift.ExcUnknownMethod, \"unknown method \"+name)\n", lowerFirst(svc.Name))
	g.pf("}\n\n")

	// Shared exception encoder.
	g.pf("func %sEncodeException(name string, seq int32, code thrift.ApplicationExceptionType, msg string) []byte {\n", lowerFirst(svc.Name))
	g.pf("\tbuf := thrift.NewTMemoryBuffer()\n")
	g.pf("\tw := thrift.NewTBinaryProtocol(buf)\n")
	g.pf("\tw.WriteMessageBegin(name, thrift.EXCEPTION, seq)\n")
	g.pf("\tthrift.NewApplicationException(code, msg).Write(w)\n")
	g.pf("\tw.WriteMessageEnd()\n")
	g.pf("\treturn buf.Bytes()\n}\n\n")

	for _, fn := range svc.Functions {
		g.genHandlerStub(svc, fn)
	}
}

func (g *gen) genHandlerStub(svc *idl.Service, fn *idl.Function) {
	pn := svc.Name + "Processor"
	g.pf("func (pr *%s) handle%s(p *sim.Proc, r thrift.TProtocol, seq int32) []byte {\n", pn, goName(fn.Name))
	g.pf("\tvar args %s\n", argsStructName(svc, fn))
	g.pf("\tif err := args.Read(r); err != nil {\n\t\treturn %sEncodeException(%q, seq, thrift.ExcProtocolError, err.Error())\n\t}\n", lowerFirst(svc.Name), fn.Name)
	callArgs := "p"
	for _, a := range fn.Args {
		callArgs += ", args." + goName(a.Name)
	}
	if fn.Oneway {
		g.pf("\tpr.h.%s(%s)\n", goName(fn.Name), callArgs)
		g.pf("\treturn nil\n}\n\n")
		return
	}
	if fn.Returns != nil {
		g.pf("\tret, err := pr.h.%s(%s)\n", goName(fn.Name), callArgs)
	} else {
		g.pf("\terr := pr.h.%s(%s)\n", goName(fn.Name), callArgs)
	}
	g.pf("\tvar result %s\n", resultStructName(svc, fn))
	g.pf("\tif err != nil {\n")
	if len(fn.Throws) == 0 {
		g.pf("\t\treturn %sEncodeException(%q, seq, thrift.ExcInternalError, err.Error())\n", lowerFirst(svc.Name), fn.Name)
	} else {
		g.pf("\t\tswitch e := err.(type) {\n")
		for _, th := range fn.Throws {
			g.pf("\t\tcase %s:\n\t\t\tresult.%s = e\n", g.goType(th.Type), goName(th.Name))
		}
		g.pf("\t\tdefault:\n\t\t\treturn %sEncodeException(%q, seq, thrift.ExcInternalError, err.Error())\n", lowerFirst(svc.Name), fn.Name)
		g.pf("\t\t}\n")
	}
	if fn.Returns != nil {
		g.pf("\t} else {\n\t\tresult.Success = ret\n\t\tresult.SuccessSet = true\n\t}\n")
	} else {
		g.pf("\t}\n")
	}
	g.pf("\tbuf := thrift.NewTMemoryBuffer()\n")
	g.pf("\tw := thrift.NewTBinaryProtocol(buf)\n")
	g.pf("\tw.WriteMessageBegin(%q, thrift.REPLY, seq)\n", fn.Name)
	g.pf("\tresult.Write(w)\n")
	g.pf("\tw.WriteMessageEnd()\n")
	g.pf("\treturn buf.Bytes()\n}\n\n")
}

func (g *gen) genHintTable(svc *idl.Service) {
	g.pf("// %sHints is the hierarchical hint table for service %s (Fig. 1).\n", svc.Name, svc.Name)
	g.pf("var %sHints = &trdma.ServiceHints{\n", svc.Name)
	g.pf("\tServiceName: %q,\n", svc.Name)
	g.pf("\tService: %s,\n", hintLiteral(svc.Hints))
	g.pf("\tFunctions: map[string]*hints.Set{\n")
	for _, fn := range svc.Functions {
		g.pf("\t\t%q: %s,\n", fn.Name, hintLiteral(fn.Hints))
	}
	g.pf("\t},\n")
	g.pf("\tFnIDs: map[string]uint32{\n")
	for i, fn := range svc.Functions {
		g.pf("\t\t%q: %d,\n", fn.Name, i+1)
	}
	g.pf("\t},\n")
	g.pf("\tOneway: map[string]bool{\n")
	for _, fn := range svc.Functions {
		if fn.Oneway {
			g.pf("\t\t%q: true,\n", fn.Name)
		}
	}
	g.pf("\t},\n")
	g.pf("}\n\n")
}
