// Package hints implements HatRPC's hierarchical hint scheme (§4.1).
//
// Hints partition two ways. Vertically, service-level hints set defaults
// for every function in the service and function-level hints override
// them per key, only for that function. Laterally, each level carries
// three groups: shared hints ("hint:"), server-side hints ("s_hint:") and
// client-side hints ("c_hint:"); a side-specific hint overrides the
// shared one for that side.
//
// Resolution order for one (function, side) pair, weakest first:
//
//	service shared < service side < function shared < function side
package hints

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Key identifies a hint category.
type Key string

// Supported hint keys.
const (
	KeyPerfGoal    Key = "perf_goal"    // latency | throughput | res_util
	KeyConcurrency Key = "concurrency"  // expected concurrent clients (int)
	KeyPayloadSize Key = "payload_size" // typical payload bytes (int)
	KeyPolling     Key = "polling"      // auto | busy | event | adaptive
	KeyNUMA        Key = "numa"         // bind | none
	KeyTransport   Key = "transport"    // rdma | tcp
	KeyPriority    Key = "priority"     // high | low
)

// PerfGoal is the value domain of KeyPerfGoal.
type PerfGoal string

// Performance-goal hint values (Fig. 6 x-axis).
const (
	GoalLatency    PerfGoal = "latency"
	GoalThroughput PerfGoal = "throughput"
	GoalResUtil    PerfGoal = "res_util"
)

// Polling is the value domain of KeyPolling.
type Polling string

// Polling-mechanism hint values. PollAdaptive is the hybrid discipline:
// spin briefly after each arm (catching back-to-back completions at
// busy-poll latency) then fall back to the interrupt path — the tradeoff
// RPCAcc and fabric-lib both land on for mixed-rate CQs.
const (
	PollAuto     Polling = "auto"
	PollBusy     Polling = "busy"
	PollEvent    Polling = "event"
	PollAdaptive Polling = "adaptive"
)

// Side distinguishes the lateral hint scopes.
type Side int

// Lateral scopes: shared applies to both sides.
const (
	SideShared Side = iota
	SideServer
	SideClient
)

func (s Side) String() string {
	switch s {
	case SideServer:
		return "s_hint"
	case SideClient:
		return "c_hint"
	default:
		return "hint"
	}
}

// validators maps each key to its value check.
var validators = map[Key]func(string) error{
	KeyPerfGoal:    oneOf("latency", "throughput", "res_util"),
	KeyConcurrency: positiveInt,
	KeyPayloadSize: positiveInt,
	KeyPolling:     oneOf("auto", "busy", "event", "adaptive"),
	KeyNUMA:        oneOf("bind", "none"),
	KeyTransport:   oneOf("rdma", "tcp"),
	KeyPriority:    oneOf("high", "low"),
}

func oneOf(vals ...string) func(string) error {
	return func(v string) error {
		for _, w := range vals {
			if v == w {
				return nil
			}
		}
		return fmt.Errorf("must be one of %s", strings.Join(vals, "|"))
	}
}

func positiveInt(v string) error {
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return fmt.Errorf("must be a positive integer")
	}
	return nil
}

// Validate checks a single key/value pair. Unknown keys and malformed
// values are rejected — the code generator filters these out with a
// warning (§4.2).
func Validate(k Key, v string) error {
	check, ok := validators[k]
	if !ok {
		return fmt.Errorf("hints: unknown hint key %q", k)
	}
	if err := check(v); err != nil {
		return fmt.Errorf("hints: %s=%s: %v", k, v, err)
	}
	return nil
}

// KnownKeys returns all supported keys, sorted.
func KnownKeys() []Key {
	ks := make([]Key, 0, len(validators))
	for k := range validators {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Group is one lateral hint group: the key/value pairs declared in a
// single hint:/s_hint:/c_hint: clause (or the merge of several).
type Group map[Key]string

// Clone returns a copy of the group.
func (g Group) Clone() Group {
	out := make(Group, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// Merge overlays other on top of g (other wins) and returns g.
func (g Group) Merge(other Group) Group {
	for k, v := range other {
		g[k] = v
	}
	return g
}

// String renders the group deterministically ("k=v, k=v").
func (g Group) String() string {
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + g[Key(k)]
	}
	return strings.Join(parts, ", ")
}

// Set is the full lateral hint set at one vertical level (service or
// function): shared, server and client groups.
type Set struct {
	Shared Group
	Server Group
	Client Group
}

// NewSet returns an empty set with allocated groups.
func NewSet() *Set {
	return &Set{Shared: Group{}, Server: Group{}, Client: Group{}}
}

// Group returns the group for a lateral side, allocating if nil.
func (s *Set) Group(side Side) Group {
	switch side {
	case SideServer:
		if s.Server == nil {
			s.Server = Group{}
		}
		return s.Server
	case SideClient:
		if s.Client == nil {
			s.Client = Group{}
		}
		return s.Client
	default:
		if s.Shared == nil {
			s.Shared = Group{}
		}
		return s.Shared
	}
}

// Add records a validated hint in the given lateral group. Invalid hints
// return an error and are not recorded.
func (s *Set) Add(side Side, k Key, v string) error {
	if err := Validate(k, v); err != nil {
		return err
	}
	s.Group(side)[k] = v
	return nil
}

// ForSide flattens the lateral dimension for one side: shared hints
// overridden by that side's specific hints.
func (s *Set) ForSide(side Side) Group {
	g := Group{}
	if s.Shared != nil {
		g.Merge(s.Shared)
	}
	switch side {
	case SideServer:
		if s.Server != nil {
			g.Merge(s.Server)
		}
	case SideClient:
		if s.Client != nil {
			g.Merge(s.Client)
		}
	}
	return g
}

// Empty reports whether no hints are present at this level.
func (s *Set) Empty() bool {
	return len(s.Shared) == 0 && len(s.Server) == 0 && len(s.Client) == 0
}

// Resolve flattens the full hierarchy for one (function, side): service
// hints first, then function hints override per key (§4.1). Either set
// may be nil.
func Resolve(service, function *Set, side Side) Group {
	g := Group{}
	if service != nil {
		g.Merge(service.ForSide(side))
	}
	if function != nil {
		g.Merge(function.ForSide(side))
	}
	return g
}

// ---------------------------------------------------------------------------
// Resolved: typed view of a flattened group, consumed by the engine.

// Subscription classifies expected concurrency against a node's core
// count (Fig. 5 / Fig. 6 y-axis).
type Subscription int

// Subscription levels.
const (
	UnderSubscribed Subscription = iota
	FullySubscribed
	OverSubscribed
)

func (s Subscription) String() string {
	switch s {
	case UnderSubscribed:
		return "under"
	case FullySubscribed:
		return "full"
	default:
		return "over"
	}
}

// Resolved is the typed, defaulted form of a flattened hint group.
type Resolved struct {
	Goal        PerfGoal
	Concurrency int // expected concurrent clients; 0 = unknown
	PayloadSize int // expected payload bytes; 0 = unknown
	Polling     Polling
	NUMABind    bool
	UseTCP      bool
	LowPriority bool
}

// DefaultResolved returns the engine defaults used when no hints are
// given: a balanced profile (throughput goal, auto polling).
func DefaultResolved() Resolved {
	return Resolved{Goal: GoalThroughput, Polling: PollAuto}
}

// TypeCheck parses a flattened group into a Resolved, applying defaults
// for absent keys. Values are assumed pre-validated; malformed values
// fall back to defaults rather than failing at call time.
func TypeCheck(g Group) Resolved {
	r := DefaultResolved()
	if v, ok := g[KeyPerfGoal]; ok {
		r.Goal = PerfGoal(v)
	}
	if v, ok := g[KeyConcurrency]; ok {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			r.Concurrency = n
		}
	}
	if v, ok := g[KeyPayloadSize]; ok {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			r.PayloadSize = n
		}
	}
	if v, ok := g[KeyPolling]; ok {
		r.Polling = Polling(v)
	}
	r.NUMABind = g[KeyNUMA] == "bind"
	r.UseTCP = g[KeyTransport] == "tcp"
	r.LowPriority = g[KeyPriority] == "low"
	return r
}

// Subscription classifies r.Concurrency against the node's core count.
// Unknown concurrency is treated as fully subscribed (the balanced
// assumption).
func (r Resolved) Subscription(cores int) Subscription {
	if cores <= 0 {
		return FullySubscribed
	}
	switch {
	case r.Concurrency == 0:
		return FullySubscribed
	case r.Concurrency < cores:
		return UnderSubscribed
	case r.Concurrency == cores:
		return FullySubscribed
	default:
		return OverSubscribed
	}
}

// MakeSet builds a Set from literal maps — the constructor emitted by the
// HatRPC code generator for its hint tables. Values are assumed to have
// been validated at generation time; invalid entries are dropped to keep
// generated code total.
func MakeSet(shared, server, client map[Key]string) *Set {
	s := NewSet()
	for k, v := range shared {
		_ = s.Add(SideShared, k, v)
	}
	for k, v := range server {
		_ = s.Add(SideServer, k, v)
	}
	for k, v := range client {
		_ = s.Add(SideClient, k, v)
	}
	return s
}
