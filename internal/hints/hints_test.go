package hints

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateAcceptsKnownGoodValues(t *testing.T) {
	good := []struct {
		k Key
		v string
	}{
		{KeyPerfGoal, "latency"},
		{KeyPerfGoal, "throughput"},
		{KeyPerfGoal, "res_util"},
		{KeyConcurrency, "1"},
		{KeyConcurrency, "512"},
		{KeyPayloadSize, "131072"},
		{KeyPolling, "auto"},
		{KeyPolling, "busy"},
		{KeyPolling, "event"},
		{KeyNUMA, "bind"},
		{KeyTransport, "tcp"},
		{KeyPriority, "low"},
	}
	for _, c := range good {
		if err := Validate(c.k, c.v); err != nil {
			t.Errorf("Validate(%s,%s) = %v, want nil", c.k, c.v, err)
		}
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	bad := []struct {
		k Key
		v string
	}{
		{KeyPerfGoal, "speed"},
		{KeyConcurrency, "0"},
		{KeyConcurrency, "-3"},
		{KeyConcurrency, "many"},
		{KeyPayloadSize, "4KB"},
		{KeyPolling, "spin"},
		{Key("made_up"), "x"},
		{KeyNUMA, "yes"},
	}
	for _, c := range bad {
		if err := Validate(c.k, c.v); err == nil {
			t.Errorf("Validate(%s,%s) = nil, want error", c.k, c.v)
		}
	}
}

func TestSetAddRejectsInvalid(t *testing.T) {
	s := NewSet()
	if err := s.Add(SideShared, KeyPerfGoal, "warp"); err == nil {
		t.Fatal("invalid hint accepted")
	}
	if !s.Empty() {
		t.Fatal("invalid hint was recorded")
	}
	if err := s.Add(SideShared, KeyPerfGoal, "latency"); err != nil {
		t.Fatal(err)
	}
	if s.Empty() {
		t.Fatal("valid hint not recorded")
	}
}

func TestLateralOverride(t *testing.T) {
	s := NewSet()
	must(t, s.Add(SideShared, KeyPolling, "event"))
	must(t, s.Add(SideServer, KeyPolling, "busy"))
	if got := s.ForSide(SideServer)[KeyPolling]; got != "busy" {
		t.Fatalf("server side polling = %s, want busy (s_hint overrides hint)", got)
	}
	if got := s.ForSide(SideClient)[KeyPolling]; got != "event" {
		t.Fatalf("client side polling = %s, want event (shared)", got)
	}
}

func TestVerticalOverride(t *testing.T) {
	svc := NewSet()
	must(t, svc.Add(SideShared, KeyPerfGoal, "throughput"))
	must(t, svc.Add(SideShared, KeyConcurrency, "128"))
	fn := NewSet()
	must(t, fn.Add(SideShared, KeyPerfGoal, "latency"))

	g := Resolve(svc, fn, SideClient)
	if g[KeyPerfGoal] != "latency" {
		t.Fatalf("function hint did not override service: %v", g)
	}
	if g[KeyConcurrency] != "128" {
		t.Fatalf("service hint not inherited: %v", g)
	}
}

func TestResolvePrecedenceFullChain(t *testing.T) {
	// service shared < service side < function shared < function side
	svc := NewSet()
	must(t, svc.Add(SideShared, KeyPolling, "auto"))
	must(t, svc.Add(SideClient, KeyPolling, "event"))
	fn := NewSet()

	if got := Resolve(svc, fn, SideClient)[KeyPolling]; got != "event" {
		t.Fatalf("step2: %s", got)
	}
	must(t, fn.Add(SideShared, KeyPolling, "busy"))
	if got := Resolve(svc, fn, SideClient)[KeyPolling]; got != "busy" {
		t.Fatalf("step3: %s", got)
	}
	must(t, fn.Add(SideClient, KeyPolling, "event"))
	if got := Resolve(svc, fn, SideClient)[KeyPolling]; got != "event" {
		t.Fatalf("step4: %s", got)
	}
	// Server side unaffected by client-side function hint.
	if got := Resolve(svc, fn, SideServer)[KeyPolling]; got != "busy" {
		t.Fatalf("server leak: %s", got)
	}
}

func TestResolveNilSets(t *testing.T) {
	if g := Resolve(nil, nil, SideClient); len(g) != 0 {
		t.Fatalf("Resolve(nil,nil) = %v, want empty", g)
	}
	fn := NewSet()
	must(t, fn.Add(SideShared, KeyPerfGoal, "latency"))
	if g := Resolve(nil, fn, SideServer); g[KeyPerfGoal] != "latency" {
		t.Fatalf("nil service: %v", g)
	}
}

func TestTypeCheckDefaults(t *testing.T) {
	r := TypeCheck(Group{})
	if r.Goal != GoalThroughput || r.Polling != PollAuto {
		t.Fatalf("defaults = %+v", r)
	}
	if r.Concurrency != 0 || r.PayloadSize != 0 || r.NUMABind || r.UseTCP || r.LowPriority {
		t.Fatalf("defaults = %+v", r)
	}
}

func TestTypeCheckParsesAll(t *testing.T) {
	r := TypeCheck(Group{
		KeyPerfGoal:    "latency",
		KeyConcurrency: "64",
		KeyPayloadSize: "512",
		KeyPolling:     "busy",
		KeyNUMA:        "bind",
		KeyTransport:   "tcp",
		KeyPriority:    "low",
	})
	if r.Goal != GoalLatency || r.Concurrency != 64 || r.PayloadSize != 512 ||
		r.Polling != PollBusy || !r.NUMABind || !r.UseTCP || !r.LowPriority {
		t.Fatalf("parsed = %+v", r)
	}
}

func TestSubscriptionClassification(t *testing.T) {
	cases := []struct {
		conc, cores int
		want        Subscription
	}{
		{1, 28, UnderSubscribed},
		{16, 28, UnderSubscribed},
		{28, 28, FullySubscribed},
		{29, 28, OverSubscribed},
		{512, 28, OverSubscribed},
		{0, 28, FullySubscribed}, // unknown
	}
	for _, c := range cases {
		r := Resolved{Concurrency: c.conc}
		if got := r.Subscription(c.cores); got != c.want {
			t.Errorf("Subscription(%d clients, %d cores) = %v, want %v", c.conc, c.cores, got, c.want)
		}
	}
}

func TestGroupStringDeterministic(t *testing.T) {
	g := Group{KeyPolling: "busy", KeyConcurrency: "4", KeyPerfGoal: "latency"}
	want := "concurrency=4, perf_goal=latency, polling=busy"
	if g.String() != want {
		t.Fatalf("String() = %q, want %q", g.String(), want)
	}
}

func TestKnownKeysSorted(t *testing.T) {
	ks := KnownKeys()
	if len(ks) != 7 {
		t.Fatalf("KnownKeys() has %d entries, want 7", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("KnownKeys not sorted: %v", ks)
		}
	}
}

func TestSideString(t *testing.T) {
	if SideShared.String() != "hint" || SideServer.String() != "s_hint" || SideClient.String() != "c_hint" {
		t.Fatal("Side.String mismatch")
	}
}

// Property: Merge is right-biased and Resolve(service, function) always
// prefers function values for keys present in both.
func TestPropertyFunctionAlwaysWins(t *testing.T) {
	goals := []string{"latency", "throughput", "res_util"}
	f := func(si, fi uint8, side uint8) bool {
		svcGoal := goals[int(si)%3]
		fnGoal := goals[int(fi)%3]
		svc, fn := NewSet(), NewSet()
		if err := svc.Add(SideShared, KeyPerfGoal, svcGoal); err != nil {
			return false
		}
		if err := fn.Add(SideShared, KeyPerfGoal, fnGoal); err != nil {
			return false
		}
		g := Resolve(svc, fn, Side(int(side)%3))
		return g[KeyPerfGoal] == fnGoal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ForSide never invents keys — every key in the output exists in
// one of the source groups.
func TestPropertyNoInventedKeys(t *testing.T) {
	f := func(sharedConc, serverConc uint16) bool {
		s := NewSet()
		if sharedConc > 0 {
			if err := s.Add(SideShared, KeyConcurrency, itoa(int(sharedConc))); err != nil {
				return false
			}
		}
		if serverConc > 0 {
			if err := s.Add(SideServer, KeyConcurrency, itoa(int(serverConc))); err != nil {
				return false
			}
		}
		g := s.ForSide(SideServer)
		for k := range g {
			if _, ok := s.Shared[k]; ok {
				continue
			}
			if _, ok := s.Server[k]; ok {
				continue
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b strings.Builder
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b.WriteByte(digits[i])
	}
	return b.String()
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
