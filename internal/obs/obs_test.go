package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	h := r.Histogram("y")
	h.Observe(1)
	r.Gauge("g", func() float64 { return 1 })
	if _, ok := r.GaugeValue("g"); ok {
		t.Fatal("nil registry returned a gauge")
	}
	var tr *Tracer
	tr.Complete("c", "n", 0, 0, 0, 10)
	tr.Instant("c", "n", 0, 0, 0)
	sp := tr.Begin("c", "n", 0, 0, 0)
	sp.End(5)
	if tr.Len() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry has a tracer")
	}
}

func TestCounterHistogramGaugeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.calls")
	c.Inc()
	c.Add(4)
	if got := r.Counter("engine.calls").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	h := r.Histogram("lat")
	for _, v := range []float64{100, 200, 300} {
		h.Observe(v)
	}
	if h.Sample().N() != 3 || h.Sample().Mean() != 200 {
		t.Fatalf("histogram n=%d mean=%v", h.Sample().N(), h.Sample().Mean())
	}
	v := 7.5
	r.Gauge("util", func() float64 { return v })
	if got, ok := r.GaugeValue("util"); !ok || got != 7.5 {
		t.Fatalf("gauge = %v ok=%v", got, ok)
	}
	v = 9.25 // gauges sample at read time
	if got, _ := r.GaugeValue("util"); got != 9.25 {
		t.Fatalf("gauge resample = %v", got)
	}
}

func TestRenderSortedAndStable(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("z.last").Add(2)
		r.Counter("a.first").Add(1)
		r.Histogram("h").Observe(1500)
		r.Gauge("g", func() float64 { return 0.5 })
		return r.Render()
	}
	out := build()
	if out != build() {
		t.Fatal("render not deterministic")
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{"a.first", "z.last", "1.50µs", "0.5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceJSONValidAndDeterministic(t *testing.T) {
	build := func() []byte {
		tr := NewTracer()
		tr.Complete("rpc", "call.Eager", 0, 1, 1000, 4500, Arg{"size", 512}, Arg{"fn", uint32(3)})
		tr.Instant("fetch", "retry", 1, 2, 2000, Arg{"reason", "stale \"seq\""})
		sp := tr.Begin("rndv", "cts_wait", 0, 1, 3000)
		sp.End(3600)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("trace export not byte-identical across identical runs")
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a)
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ns" {
		t.Fatalf("parsed %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "X" || ev.TS != 1.0 || ev.Dur != 3.5 {
		t.Fatalf("complete event = %+v (ts/dur in µs)", ev)
	}
	if ev.Args["size"] != float64(512) {
		t.Fatalf("args = %v", ev.Args)
	}
	if doc.TraceEvents[1].Args["reason"] != `stale "seq"` {
		t.Fatalf("escaped arg = %v", doc.TraceEvents[1].Args)
	}
}

func TestTracePIDOffset(t *testing.T) {
	tr := NewTracer()
	tr.Complete("c", "a", 1, 0, 0, 1)
	tr.SetPIDOffset(100)
	tr.Complete("c", "b", 1, 0, 0, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\"pid\":1,") || !strings.Contains(out, "\"pid\":101,") {
		t.Fatalf("pid offset not applied:\n%s", out)
	}
}

func TestTraceNegativeDurationClamped(t *testing.T) {
	tr := NewTracer()
	tr.Complete("c", "n", 0, 0, 500, 400) // end before start
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"dur\":0.000") {
		t.Fatalf("negative duration not clamped:\n%s", buf.String())
	}
}
