// Package obs is the engine's zero-dependency observability layer:
// named counters, phase-latency histograms (backed by stats.Sample),
// gauge sampling, and a deterministic sim-time event tracer that exports
// chrome://tracing JSON (see trace.go).
//
// Design constraints, in order:
//
//  1. Off-by-default-cheap. Every instrument is nil-safe: a nil *Counter,
//     *Histogram or *Tracer is a no-op, so uninstrumented hot paths pay a
//     single pointer test. Packages hold instrument pointers that are nil
//     until a Registry is attached.
//  2. Deterministic. The DES runs one process at a time, so no locking is
//     needed; all rendering iterates instruments in sorted-name order and
//     trace events in insertion order, so two identical simulation runs
//     produce byte-identical output.
//  3. Zero dependencies. Only stdlib plus internal/stats.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"hatrpc/internal/stats"
)

// Counter is a monotonically increasing named count.
type Counter struct {
	name string
	v    int64
}

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d. Safe on a nil counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Histogram collects a named distribution (typically phase latencies in
// nanoseconds) on top of stats.Sample.
type Histogram struct {
	name string
	s    stats.Sample
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h != nil {
		h.s.Add(v)
	}
}

// Sample exposes the underlying sample for percentile queries.
func (h *Histogram) Sample() *stats.Sample { return &h.s }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Gauge is a named sampled value: the callback is invoked at render (or
// GaugeValue) time, not continuously.
type Gauge struct {
	name string
	fn   func() float64
}

// Registry holds every instrument of one observation domain (typically
// one benchmark run, possibly spanning several engines). It is not safe
// for concurrent use; the DES serializes all processes.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	tracer   *Tracer
}

// NewRegistry returns an empty registry with no tracer attached.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil, which is a valid no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Gauge registers (or replaces) a sampled value under name. Re-registering
// is deliberate: sweep harnesses rebuild the simulated cluster per data
// point and the freshest closure wins.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.gauges[name] = &Gauge{name: name, fn: fn}
}

// GaugeValue samples the named gauge.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	g, ok := r.gauges[name]
	if !ok {
		return 0, false
	}
	return g.fn(), true
}

// SetTracer attaches an event tracer; nil detaches it.
func (r *Registry) SetTracer(t *Tracer) {
	if r != nil {
		r.tracer = t
	}
}

// Tracer returns the attached tracer (nil when tracing is off — the nil
// tracer is itself a valid no-op).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// CountersTable renders all counters as an aligned table, sorted by name.
func (r *Registry) CountersTable() string {
	tb := stats.NewTable("counter", "value")
	for _, k := range sortedKeys(r.counters) {
		tb.Row(k, r.counters[k].v)
	}
	return tb.String()
}

// HistogramsTable renders all histograms (count, mean, p50, p99, max in
// adaptive time units), sorted by name.
func (r *Registry) HistogramsTable() string {
	tb := stats.NewTable("histogram", "n", "avg", "p50", "p99", "max")
	for _, k := range sortedKeys(r.hists) {
		s := r.hists[k].Sample()
		tb.Row(k, s.N(), stats.FormatNs(s.Mean()), stats.FormatNs(s.Percentile(50)),
			stats.FormatNs(s.Percentile(99)), stats.FormatNs(s.Max()))
	}
	return tb.String()
}

// GaugesTable samples and renders all gauges, sorted by name.
func (r *Registry) GaugesTable() string {
	tb := stats.NewTable("gauge", "value")
	for _, k := range sortedKeys(r.gauges) {
		tb.Row(k, fmt.Sprintf("%.4f", r.gauges[k].fn()))
	}
	return tb.String()
}

// Render renders every non-empty instrument family.
func (r *Registry) Render() string {
	var b strings.Builder
	if len(r.counters) > 0 {
		b.WriteString(r.CountersTable())
	}
	if len(r.hists) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.HistogramsTable())
	}
	if len(r.gauges) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.GaugesTable())
	}
	return b.String()
}
