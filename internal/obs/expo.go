package obs

import (
	"fmt"
	"strings"
)

// expoPrefix namespaces every exposed series, so a scrape that merges
// several jobs cannot collide with someone else's metric names.
const expoPrefix = "hatrpc_"

// promName mangles a registry instrument name (dotted, per DESIGN.md §10
// obsnames: [a-z0-9_.]) into a Prometheus-legal metric name: every
// character outside [a-zA-Z0-9_] becomes '_', and the result is
// namespaced under expoPrefix. The mapping is injective over
// obsnames-compliant inputs ('.' is the only mangled character and '_'
// never abuts it in practice; a collision would merge two series in the
// exposition, which the golden test would surface as a duplicate line).
func promName(name string) string {
	var b strings.Builder
	b.WriteString(expoPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Exposition renders every instrument in the Prometheus text exposition
// format (version 0.0.4): counters as `<name>_total` counter series,
// histograms as summaries (p50/p99 quantiles plus _sum and _count), and
// gauges as gauge series sampled at render time. Families are emitted in
// sorted-name order within each kind (counters, then histograms, then
// gauges), so two identical simulation runs produce byte-identical
// scrapes — the property the golden-file test pins. Safe on a nil
// registry (returns "").
func (r *Registry) Exposition() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedKeys(r.counters) {
		n := promName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, r.counters[k].v)
	}
	for _, k := range sortedKeys(r.hists) {
		n := promName(k)
		s := r.hists[k].Sample()
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", n, formatExpo(s.Percentile(50)))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", n, formatExpo(s.Percentile(99)))
		fmt.Fprintf(&b, "%s_sum %s\n", n, formatExpo(s.Mean()*float64(s.N())))
		fmt.Fprintf(&b, "%s_count %d\n", n, s.N())
	}
	for _, k := range sortedKeys(r.gauges) {
		n := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, formatExpo(r.gauges[k].fn()))
	}
	return b.String()
}

// formatExpo renders a sample value the way Prometheus text format
// expects: integral values without a decimal point, everything else in
// shortest-roundtrip form. %g alone would switch large integers to
// scientific notation, which scrapes fine but diffs badly in goldens.
func formatExpo(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
