package obs

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// expoFixture builds a registry exercising every instrument kind with
// names drawn from the real instrument set (dotted, obsnames-style).
func expoFixture() *Registry {
	r := NewRegistry()
	r.Counter("engine.session_redials").Add(3)
	r.Counter("cluster.promotions").Inc()
	r.Counter("node.drained").Add(17)
	h := r.Histogram("engine.call_lat.eager")
	for _, v := range []float64{1000, 2000, 3000, 4000, 5000} {
		h.Observe(v)
	}
	r.Gauge("engine.pinned_bytes", func() float64 { return 1 << 20 })
	r.Gauge("node.health", func() float64 { return 1.5 })
	return r
}

// TestExpositionGolden pins the exposition byte-for-byte: stable
// ordering (counters, histograms, gauges — each sorted by name), the
// _total/_sum/_count/quantile series shapes, and the numeric rendering.
// Any drift fails here; regenerate deliberately with `go test -update`.
func TestExpositionGolden(t *testing.T) {
	got := expoFixture().Exposition()
	const golden = "testdata/exposition.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionNamesLegal: every exposed series name (and its TYPE
// declaration) must be a legal Prometheus metric name — the obsnames
// dotted convention mangles cleanly and no duplicate series appear.
func TestExpositionNamesLegal(t *testing.T) {
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	seen := make(map[string]bool)
	for _, line := range strings.Split(expoFixture().Exposition(), "\n") {
		if line == "" {
			continue
		}
		var name string
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name = strings.Fields(rest)[0]
		} else {
			name = strings.SplitN(line, "{", 2)[0]
			name = strings.Fields(name)[0]
		}
		if !nameRe.MatchString(name) {
			t.Errorf("illegal metric name %q in line %q", name, line)
		}
		if !strings.HasPrefix(name, expoPrefix) {
			t.Errorf("metric %q missing %q namespace", name, expoPrefix)
		}
		if !strings.HasPrefix(line, "# TYPE ") && !strings.Contains(line, "{") {
			if seen[line[:strings.Index(line, " ")]] {
				t.Errorf("duplicate series %q", line)
			}
			seen[line[:strings.Index(line, " ")]] = true
		}
	}
}

// TestExpositionNilSafe: a nil registry exposes the empty scrape.
func TestExpositionNilSafe(t *testing.T) {
	var r *Registry
	if got := r.Exposition(); got != "" {
		t.Errorf("nil registry exposition = %q, want empty", got)
	}
}
