package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Tracer records sim-time-stamped events and exports them in the
// chrome://tracing JSON array format (load the file in chrome://tracing
// or https://ui.perfetto.dev). Timestamps are virtual nanoseconds as
// reported by the DES clock; callers pass them explicitly so the tracer
// itself has no clock dependency.
//
// Events are stored and exported in insertion order. The DES executes
// processes one at a time in a deterministic order, so two identical runs
// emit byte-identical trace files.
//
// The nil *Tracer is a valid no-op: every method tests the receiver, so
// instrumented code can call through an untraced path at the cost of one
// branch.
type Tracer struct {
	events []traceEvent
	pidOff int
}

// Arg is one ordered key/value annotation on a trace event. V may be a
// string, integer, or float; anything else renders via %v as a string.
type Arg struct {
	K string
	V any
}

type traceEvent struct {
	name, cat string
	ph        byte  // 'X' complete, 'i' instant
	ts        int64 // event start, virtual ns
	dur       int64 // 'X' only
	pid, tid  int
	args      []Arg
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetPIDOffset shifts the pid of subsequently recorded events. Sweep
// harnesses that run many independent simulations into one trace bump the
// offset per run so node timelines from different runs do not overlap.
func (t *Tracer) SetPIDOffset(off int) {
	if t != nil {
		t.pidOff = off
	}
}

// Len returns the number of recorded events (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Complete records a finished span: [start, end) virtual ns.
func (t *Tracer) Complete(cat, name string, pid, tid int, start, end int64, args ...Arg) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'X', ts: start, dur: end - start,
		pid: pid + t.pidOff, tid: tid, args: args,
	})
}

// Instant records a point event at ts virtual ns.
func (t *Tracer) Instant(cat, name string, pid, tid int, ts int64, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		name: name, cat: cat, ph: 'i', ts: ts,
		pid: pid + t.pidOff, tid: tid, args: args,
	})
}

// Span is an in-progress Complete event; End records it.
type Span struct {
	t         *Tracer
	cat, name string
	pid, tid  int
	start     int64
	args      []Arg
}

// Begin opens a span at start virtual ns. On a nil tracer it returns a
// zero Span whose End is a no-op.
func (t *Tracer) Begin(cat, name string, pid, tid int, start int64, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, pid: pid, tid: tid, start: start, args: args}
}

// End closes the span at end virtual ns.
func (s Span) End(end int64) {
	if s.t == nil {
		return
	}
	s.t.Complete(s.cat, s.name, s.pid, s.tid, s.start, end, s.args...)
}

// WriteJSON emits the chrome://tracing "JSON object format": a
// traceEvents array plus displayTimeUnit. Timestamps convert from virtual
// ns to the format's microseconds with fixed three-decimal precision, so
// output is byte-stable across runs.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[\n")
	for i, ev := range t.events {
		if i > 0 {
			b.WriteString(",\n")
		}
		b.WriteString("{\"name\":")
		writeJSONString(&b, ev.name)
		b.WriteString(",\"cat\":")
		writeJSONString(&b, ev.cat)
		fmt.Fprintf(&b, ",\"ph\":\"%c\",\"ts\":%s", ev.ph, microTS(ev.ts))
		if ev.ph == 'X' {
			fmt.Fprintf(&b, ",\"dur\":%s", microTS(ev.dur))
		}
		if ev.ph == 'i' {
			b.WriteString(",\"s\":\"t\"") // thread-scoped instant
		}
		fmt.Fprintf(&b, ",\"pid\":%d,\"tid\":%d", ev.pid, ev.tid)
		if len(ev.args) > 0 {
			b.WriteString(",\"args\":{")
			for j, a := range ev.args {
				if j > 0 {
					b.WriteString(",")
				}
				writeJSONString(&b, a.K)
				b.WriteString(":")
				writeJSONValue(&b, a.V)
			}
			b.WriteString("}")
		}
		b.WriteString("}")
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// microTS renders a ns quantity in the trace format's µs with fixed
// 3-decimal (i.e. exact ns) precision.
func microTS(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

func writeJSONString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
}

func writeJSONValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		writeJSONString(b, x)
	case int:
		b.WriteString(strconv.Itoa(x))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case uint32:
		b.WriteString(strconv.FormatUint(uint64(x), 10))
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	default:
		writeJSONString(b, fmt.Sprintf("%v", x))
	}
}
