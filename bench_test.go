// Package main_test hosts the figure-regeneration benchmarks: one
// testing.B benchmark per table/figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// benchmark drives the full simulated cluster and reports the paper's
// metric (virtual latency or virtual throughput) as custom units, so
// `go test -bench` regenerates the evaluation in miniature; cmd/figures
// produces the full-resolution tables.
package main_test

import (
	"fmt"
	"strconv"
	"testing"

	"hatrpc/internal/atb"
	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/tpch"
	"hatrpc/internal/trdma"
	"hatrpc/internal/ycsb"
)

// BenchmarkFig04ProtocolLatency reproduces Figure 4 in miniature: the
// latency of representative protocols under both polling modes.
func BenchmarkFig04ProtocolLatency(b *testing.B) {
	protos := []engine.Protocol{
		engine.EagerSendRecv, engine.DirectWriteSend, engine.ChainedWriteSend,
		engine.WriteRNDV, engine.ReadRNDV, engine.DirectWriteIMM,
		engine.Pilaf, engine.FaRM, engine.RFP,
	}
	for _, proto := range protos {
		for _, busy := range []bool{true, false} {
			for _, size := range []int{512, 131072} {
				name := fmt.Sprintf("%s/%s/%s", proto, poll(busy), fmtSize(size))
				b.Run(name, func(b *testing.B) {
					cfg := atb.ProtoLatencyConfig{
						Protos: []engine.Protocol{proto}, Busy: []bool{busy},
						Sizes: []int{size}, Iters: 30, Seed: 42,
					}
					pts := atb.RunProtoLatency(cfg)
					spin(b)
					b.ReportMetric(pts[0].AvgNs, "vlat-ns/op")
					b.ReportMetric(pts[0].P99Ns, "vp99-ns")
				})
			}
		}
	}
}

// BenchmarkFig05ProtocolThroughput reproduces Figure 5 in miniature.
func BenchmarkFig05ProtocolThroughput(b *testing.B) {
	for _, proto := range []engine.Protocol{engine.DirectWriteIMM, engine.RFP, engine.EagerSendRecv} {
		for _, busy := range []bool{true, false} {
			for _, clients := range []int{4, 28, 128} {
				name := fmt.Sprintf("%s/%s/clients=%d", proto, poll(busy), clients)
				b.Run(name, func(b *testing.B) {
					cfg := atb.ProtoThroughputConfig{
						Protos: []engine.Protocol{proto}, Busy: []bool{busy},
						Sizes: []int{512}, Clients: []int{clients},
						DurationNs: 200_000, Seed: 7,
					}
					pts := atb.RunProtoThroughput(cfg)
					spin(b)
					b.ReportMetric(pts[0].OpsPerS, "vops/s")
				})
			}
		}
	}
}

// BenchmarkFig11HintLatency reproduces Figure 11: HatRPC's hint-selected
// plan versus fixed-protocol baselines.
func BenchmarkFig11HintLatency(b *testing.B) {
	for _, sys := range atb.DefaultSystems() {
		for _, size := range []int{512, 131072} {
			b.Run(fmt.Sprintf("%s/%s", sys.Name, fmtSize(size)), func(b *testing.B) {
				cfg := atb.HintLatencyConfig{
					Systems: []atb.System{sys}, Sizes: []int{size},
					Iters: 30, Seed: 11,
				}
				pts := atb.RunHintLatency(cfg)
				spin(b)
				b.ReportMetric(pts[0].AvgNs, "vlat-ns/op")
			})
		}
	}
}

// BenchmarkFig12HintThroughput reproduces Figure 12.
func BenchmarkFig12HintThroughput(b *testing.B) {
	for _, sys := range atb.DefaultSystems() {
		for _, clients := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/clients=%d", sys.Name, clients), func(b *testing.B) {
				cfg := atb.HintThroughputConfig{
					Systems: []atb.System{sys}, Sizes: []int{512},
					Clients: []int{clients}, DurationNs: 200_000, Seed: 12,
				}
				pts := atb.RunHintThroughput(cfg)
				spin(b)
				b.ReportMetric(pts[0].OpsPerS, "vops/s")
			})
		}
	}
}

// BenchmarkFig13Mix512 reproduces Figure 13 (512 B mixed workload).
func BenchmarkFig13Mix512(b *testing.B) { benchMix(b, 512, 13) }

// BenchmarkFig14Mix128K reproduces Figure 14 (128 KB mixed workload).
func BenchmarkFig14Mix128K(b *testing.B) { benchMix(b, 131072, 14) }

func benchMix(b *testing.B, size, seed int) {
	for _, sys := range atb.DefaultSystems() {
		b.Run(sys.Name, func(b *testing.B) {
			cfg := atb.MixConfig{
				Systems: []atb.System{sys}, Size: size,
				Clients: []int{28}, DurationNs: 200_000, Seed: int64(seed),
			}
			pts := atb.RunMix(cfg)
			spin(b)
			b.ReportMetric(pts[0].LatAvgNs, "vlat-ns/latcall")
			b.ReportMetric(pts[0].TputOpsS, "vops/s-tputcall")
		})
	}
}

// BenchmarkFig15YCSBA reproduces Figure 15 (YCSB-A).
func BenchmarkFig15YCSBA(b *testing.B) { benchYCSB(b, ycsb.WorkloadA(1000)) }

// BenchmarkFig16YCSBB reproduces Figure 16 (YCSB-B).
func BenchmarkFig16YCSBB(b *testing.B) { benchYCSB(b, ycsb.WorkloadB(1000)) }

func benchYCSB(b *testing.B, w ycsb.Workload) {
	for _, sys := range ycsb.AllSystems {
		b.Run(sys.String(), func(b *testing.B) {
			cfg := ycsb.RunConfig{
				Workload: w, Systems: []ycsb.SystemKind{sys},
				Clients: 32, Nodes: 5, DurationNs: 200_000, Seed: 99,
			}
			res := ycsb.Run(cfg)[0]
			spin(b)
			b.ReportMetric(res.TotalOps, "vops/s")
			b.ReportMetric(res.PerOp[ycsb.OpGet].AvgLatNs, "vget-ns")
		})
	}
}

// BenchmarkFig17TPCH reproduces Figure 17 on a representative query
// subset (the full 22 run via cmd/tpchbench).
func BenchmarkFig17TPCH(b *testing.B) {
	for _, stack := range tpch.AllStacks {
		b.Run(stack.String(), func(b *testing.B) {
			cfg := tpch.BenchConfig{
				SF: 0.005, Workers: 4, Stacks: []tpch.Stack{stack},
				Queries: []int{1, 6, 13, 19}, Seed: 2021,
			}
			res := tpch.RunBench(cfg)
			spin(b)
			var total int64
			for _, r := range res {
				total += r.TimeNs
			}
			b.ReportMetric(float64(total), "vtotal-ns")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §7)

// BenchmarkAblationChaining quantifies the chained-WR doorbell saving
// (Fig. 3b vs 3c).
func BenchmarkAblationChaining(b *testing.B) {
	for _, proto := range []engine.Protocol{engine.DirectWriteSend, engine.ChainedWriteSend} {
		b.Run(proto.String(), func(b *testing.B) {
			cfg := atb.ProtoLatencyConfig{
				Protos: []engine.Protocol{proto}, Busy: []bool{true},
				Sizes: []int{512}, Iters: 30, Seed: 1,
			}
			pts := atb.RunProtoLatency(cfg)
			spin(b)
			b.ReportMetric(pts[0].AvgNs, "vlat-ns/op")
		})
	}
}

// BenchmarkAblationPolling isolates the polling mechanism at each
// subscription level.
func BenchmarkAblationPolling(b *testing.B) {
	for _, clients := range []int{4, 28, 256} {
		for _, busy := range []bool{true, false} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, poll(busy)), func(b *testing.B) {
				cfg := atb.ProtoThroughputConfig{
					Protos: []engine.Protocol{engine.DirectWriteIMM}, Busy: []bool{busy},
					Sizes: []int{512}, Clients: []int{clients},
					DurationNs: 200_000, Seed: 3,
				}
				pts := atb.RunProtoThroughput(cfg)
				spin(b)
				b.ReportMetric(pts[0].OpsPerS, "vops/s")
			})
		}
	}
}

// BenchmarkAblationThreshold sweeps the Hybrid-EagerRNDV switch point.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, thresh := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("threshold=%d", thresh), func(b *testing.B) {
			env := sim.NewEnv(5)
			cl := simnet.NewCluster(env, simnet.DefaultConfig())
			ecfg := engine.DefaultConfig()
			ecfg.RndvThreshold = thresh
			srvEng := engine.New(cl.Node(0), ecfg)
			cliEng := engine.New(cl.Node(1), ecfg)
			srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte { return req })
			srv.Busy = true
			var total sim.Time
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				payload := make([]byte, 8192) // near the 4KB default switch
				opts := engine.CallOpts{Proto: engine.HybridEagerRNDV, Busy: true}
				c.Call(p, 1, payload, opts)
				start := p.Now()
				for i := 0; i < 20; i++ {
					c.Call(p, 1, payload, opts)
				}
				total = p.Now() - start
				env.Stop()
			})
			env.Run()
			env.Shutdown()
			spin(b)
			b.ReportMetric(float64(total)/20, "vlat-ns/op")
		})
	}
}

// BenchmarkAblationHintOverhead measures the dynamic-hint path: plan
// resolution cached (HatRPC's design) vs re-resolved per call.
func BenchmarkAblationHintOverhead(b *testing.B) {
	sh := &trdma.ServiceHints{
		ServiceName: "Echo",
		Service: hints.MakeSet(map[hints.Key]string{
			hints.KeyPerfGoal: "latency", hints.KeyConcurrency: "1",
		}, nil, nil),
		Functions: map[string]*hints.Set{"Ping": hints.NewSet()},
		FnIDs:     map[string]uint32{"Ping": 1},
		Oneway:    map[string]bool{},
	}
	b.Run("cached-plan", func(b *testing.B) {
		r := sh.Resolve("Ping", hints.SideClient)
		plan := engine.SelectPlan(r, 28, 512, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = plan // the cached pointer the paper describes (§4.3)
		}
	})
	b.Run("re-resolve-per-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := sh.Resolve("Ping", hints.SideClient)
			_ = engine.SelectPlan(r, 28, 512, 4096)
		}
	})
}

// BenchmarkAblationBackendHints measures the LMDB sync-mode knob HatKV
// tunes from hints (§4.4).
func BenchmarkAblationBackendHints(b *testing.B) {
	for _, mode := range []lmdb.SyncMode{lmdb.SyncFull, lmdb.SyncMeta, lmdb.NoSync} {
		b.Run(fmt.Sprintf("sync=%d", mode), func(b *testing.B) {
			env, err := lmdb.Open(lmdb.Options{MaxReaders: 8, Sync: mode})
			if err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := env.BeginWrite()
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Put([]byte(ycsb.Key(i%500)), val); err != nil {
					b.Fatal(err)
				}
				if err := w.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(env.Stats.SyncedCommits), "synced-commits")
		})
	}
}

// BenchmarkEngineCallRealTime measures the host-CPU cost of simulating
// one RPC (simulator efficiency, not a paper figure).
func BenchmarkEngineCallRealTime(b *testing.B) {
	benchEngineCall(b, nil)
}

// BenchmarkObsOverheadRealTime measures the same simulated RPC with the
// observability layer fully on (counters + histograms + tracer), to
// bound the cost of instrumentation versus the nil fast path above.
func BenchmarkObsOverheadRealTime(b *testing.B) {
	r := obs.NewRegistry()
	r.SetTracer(obs.NewTracer())
	benchEngineCall(b, r)
}

func benchEngineCall(b *testing.B, r *obs.Registry) {
	env := sim.NewEnv(1)
	cl := simnet.NewCluster(env, simnet.DefaultConfig())
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	if r != nil {
		srvEng.SetObs(r)
		cliEng.SetObs(r)
	}
	srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte { return req })
	srv.Busy = true
	payload := make([]byte, 512)
	b.ResetTimer()
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(p, 1, payload, engine.CallOpts{Proto: engine.DirectWriteIMM, Busy: true}); err != nil {
				panic(err)
			}
		}
		env.Stop()
	})
	env.Run()
}

func poll(busy bool) string {
	if busy {
		return "busy"
	}
	return "event"
}

func fmtSize(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return strconv.Itoa(n/1024) + "KB"
	}
	return strconv.Itoa(n) + "B"
}

// spin satisfies the b.N contract for benchmarks whose heavy work is a
// single deterministic simulation: the simulation runs once and the
// measured loop is free, so `go test -bench` terminates quickly while
// the reported custom metrics carry the virtual-time results.
func spin(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
	}
}
