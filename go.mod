module hatrpc

go 1.22
