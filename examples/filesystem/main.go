// Filesystem example: the heterogeneous-service motif from the paper's
// §3.3 — a distributed file system whose metadata RPCs are latency-hinted
// and whose chunk I/O RPCs are throughput-hinted, in one service.
//
//	go run ./examples/filesystem
package main

import (
	"fmt"
	"sort"
	"strings"

	fsgen "hatrpc/examples/filesystem/gen"
	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
	"hatrpc/internal/trdma"
)

// memFS is a toy in-memory file store behind the HatFS service.
type memFS struct {
	node  *simnet.Node
	files map[string][]byte
	beats int
}

var _ fsgen.HatFSHandler = (*memFS)(nil)

func (f *memFS) Stat(p *sim.Proc, path string) (*fsgen.FileInfo, error) {
	data, ok := f.files[path]
	if !ok {
		return nil, &fsgen.FSError{Message: "no such file: " + path}
	}
	f.node.CPU.Compute(p, 300) // inode lookup
	return &fsgen.FileInfo{Path: path, Size: int64(len(data)), Mtime: 1_720_000_000, IsDir: false}, nil
}

func (f *memFS) ListDir(p *sim.Proc, path string) ([]string, error) {
	var out []string
	prefix := strings.TrimSuffix(path, "/") + "/"
	for name := range f.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	f.node.CPU.Compute(p, sim.Duration(200*len(f.files)))
	return out, nil
}

func (f *memFS) ReadChunk(p *sim.Proc, path string, offset int64, length int32) ([]byte, error) {
	data, ok := f.files[path]
	if !ok {
		return nil, &fsgen.FSError{Message: "no such file: " + path}
	}
	end := offset + int64(length)
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	if offset >= end {
		return nil, nil
	}
	f.node.CPU.Compute(p, sim.Duration(end-offset)/8) // page-cache copy
	return data[offset:end], nil
}

func (f *memFS) WriteChunk(p *sim.Proc, path string, offset int64, data []byte) (int32, error) {
	buf := f.files[path]
	need := int(offset) + len(data)
	if len(buf) < need {
		grown := make([]byte, need)
		copy(grown, buf)
		buf = grown
	}
	copy(buf[offset:], data)
	f.files[path] = buf
	f.node.CPU.Compute(p, sim.Duration(len(data))/8)
	return int32(len(data)), nil
}

func (f *memFS) Heartbeat(p *sim.Proc, nodeId string) error {
	f.beats++
	return nil
}

func main() {
	env := sim.NewEnv(7)
	cluster := simnet.NewCluster(env, simnet.DefaultConfig())
	srvEng := engine.New(cluster.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cluster.Node(1), engine.DefaultConfig())

	fsrv := &memFS{node: cluster.Node(0), files: map[string][]byte{}}
	trdma.NewServer(srvEng, fsgen.HatFSHints, fsgen.NewHatFSProcessor(fsrv))

	var metaLat, chunkLat stats.Sample
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cluster.Node(0), fsgen.HatFSHints, nil)
		fs := fsgen.NewHatFSClient(tr)

		// Write a 1 MB file in 128 KB chunks (throughput-hinted path).
		chunk := make([]byte, 128<<10)
		for i := range chunk {
			chunk[i] = byte(i)
		}
		for off := int64(0); off < 1<<20; off += int64(len(chunk)) {
			start := p.Now()
			n, err := fs.WriteChunk(p, "/data/model.bin", off, chunk)
			check(err)
			chunkLat.Add(float64(p.Now() - start))
			if n != int32(len(chunk)) {
				panic("short write")
			}
		}

		// Metadata operations (latency-hinted path).
		for i := 0; i < 20; i++ {
			start := p.Now()
			info, err := fs.Stat(p, "/data/model.bin")
			check(err)
			metaLat.Add(float64(p.Now() - start))
			if info.Size != 1<<20 {
				panic("bad size")
			}
		}
		names, err := fs.ListDir(p, "/data")
		check(err)
		fmt.Printf("ListDir(/data) = %v\n", names)

		// Read the file back and verify.
		back, err := fs.ReadChunk(p, "/data/model.bin", 128<<10, 128<<10)
		check(err)
		for i := range back {
			if back[i] != byte(i) {
				panic("corrupt read")
			}
		}

		// Low-priority heartbeat rides the res_util path.
		check(fs.Heartbeat(p, "client-1"))
		p.Sleep(1_000_000)
		env.Stop()
	})
	env.Run()

	fmt.Printf("Stat (latency-hinted):        avg %s\n", stats.FormatNs(metaLat.Mean()))
	fmt.Printf("WriteChunk 128KB (throughput-hinted): avg %s (%.0f MB/s per stream)\n",
		stats.FormatNs(chunkLat.Mean()), float64(128<<10)/chunkLat.Mean()*1000)
	fmt.Printf("heartbeats delivered: %d\n", fsrv.beats)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
