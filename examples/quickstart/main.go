// Quickstart: define a service in hinted IDL (echo.hrpc), generate code
// with hatc, then run a server and client over the simulated RDMA fabric.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	echogen "hatrpc/examples/quickstart/gen"
	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/trdma"
)

// echoServer implements the generated EchoHandler interface.
type echoServer struct{ notified []string }

func (s *echoServer) Ping(p *sim.Proc, msg string) (string, error) {
	return "pong: " + msg, nil
}

func (s *echoServer) Reverse(p *sim.Proc, msg string) (string, error) {
	b := []byte(msg)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b), nil
}

func (s *echoServer) Notify(p *sim.Proc, event string) error {
	s.notified = append(s.notified, event)
	return nil
}

func main() {
	// A two-node simulated cluster: node 0 serves, node 1 calls.
	env := sim.NewEnv(1)
	cluster := simnet.NewCluster(env, simnet.DefaultConfig())
	serverEngine := engine.New(cluster.Node(0), engine.DefaultConfig())
	clientEngine := engine.New(cluster.Node(1), engine.DefaultConfig())

	// Boot the service. The generated hint table (from echo.hrpc:
	// perf_goal=latency, concurrency=1) configures busy polling and
	// Direct-WriteIMM under the hood.
	impl := &echoServer{}
	trdma.NewServer(serverEngine, echogen.EchoHints, echogen.NewEchoProcessor(impl))

	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, clientEngine, cluster.Node(0), echogen.EchoHints, nil)
		client := echogen.NewEchoClient(tr)

		pong, err := client.Ping(p, "hello HatRPC")
		check(err)
		fmt.Printf("Ping  → %q   (virtual time %s)\n", pong, fmtNs(p.Now()))

		start := p.Now()
		rev, err := client.Reverse(p, "streams fo thgild")
		check(err)
		fmt.Printf("Reverse → %q   (round trip %s)\n", rev, fmtNs(p.Now()-start))

		check(client.Notify(p, "deploy-finished"))

		pl := tr.Plan("Ping")
		mode := "event"
		if pl.Busy {
			mode = "busy"
		}
		fmt.Printf("hint-selected plan for Ping: %s + %s polling\n", pl.Proto, mode)

		p.Sleep(1_000_000) // let the oneway land before we stop
		env.Stop()
	})
	env.Run()

	fmt.Printf("server received oneway events: %v\n", impl.notified)
}

func fmtNs(t sim.Time) string { return fmt.Sprintf("%.2fµs", float64(t)/1000) }

func check(err error) {
	if err != nil {
		panic(err)
	}
}
