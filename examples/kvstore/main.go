// KV store example: HatKV (the paper's §4.4 co-design) under a small
// YCSB-style load, comparing the hint-driven HatRPC-Function configuration
// against the emulated RFP comparator.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"

	"hatrpc/internal/stats"
	"hatrpc/internal/ycsb"
)

func main() {
	w := ycsb.WorkloadA(2000)
	cfg := ycsb.RunConfig{
		Workload:   w,
		Systems:    []ycsb.SystemKind{ycsb.SysHatFunction, ycsb.SysHatService, ycsb.SysRFP},
		Clients:    32,
		Nodes:      5,
		DurationNs: 400_000,
		Seed:       42,
	}
	fmt.Printf("YCSB workload %s: %d records, %d clients, zipfian θ=%.2f\n\n",
		w.Name, w.Records, cfg.Clients, w.Theta)

	results := ycsb.Run(cfg)
	tb := stats.NewTable("system", "total ops/s", "Get µs", "Put µs", "MGet µs", "MPut µs")
	for _, r := range results {
		tb.Row(r.System.String(),
			fmt.Sprintf("%.0f", r.TotalOps),
			us(r.PerOp[ycsb.OpGet].AvgLatNs),
			us(r.PerOp[ycsb.OpPut].AvgLatNs),
			us(r.PerOp[ycsb.OpMultiGet].AvgLatNs),
			us(r.PerOp[ycsb.OpMultiPut].AvgLatNs),
		)
	}
	fmt.Println(tb)

	hat := results[0].TotalOps
	rfp := results[2].TotalOps
	fmt.Printf("HatRPC-Function vs RFP: %.2fx aggregate throughput\n", hat/rfp)
}

func us(ns float64) string { return fmt.Sprintf("%.1f", ns/1000) }
