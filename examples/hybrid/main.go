// Hybrid example: one service mixing transports via hints (§3.3, §5.5) —
// control-plane RPCs ride TCP/IPoIB, the data plane rides hint-planned
// RDMA, and the server is NUMA-bound.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"

	hybridgen "hatrpc/examples/hybrid/gen"
	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
	"hatrpc/internal/trdma"
)

// telemetryServer aggregates pushed samples.
type telemetryServer struct {
	node    *simnet.Node
	samples []byte
	reports int
}

var _ hybridgen.TelemetryHandler = (*telemetryServer)(nil)

func (s *telemetryServer) GetConfig(p *sim.Proc, key string) (string, error) {
	return key + "=enabled", nil
}

func (s *telemetryServer) ReportStatus(p *sim.Proc, status string) error {
	s.reports++
	return nil
}

func (s *telemetryServer) PushSamples(p *sim.Proc, samples []byte) error {
	s.samples = append(s.samples, samples...)
	s.node.CPU.Compute(p, sim.Duration(len(samples)/10))
	return nil
}

func (s *telemetryServer) PullWindow(p *sim.Proc, fromTs, toTs int64) ([]byte, error) {
	n := int(toTs - fromTs)
	if n > len(s.samples) {
		n = len(s.samples)
	}
	return s.samples[:n], nil
}

func main() {
	env := sim.NewEnv(3)
	cluster := simnet.NewCluster(env, simnet.DefaultConfig())
	srvEng := engine.New(cluster.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cluster.Node(1), engine.DefaultConfig())

	impl := &telemetryServer{node: cluster.Node(0)}
	trdma.NewServer(srvEng, hybridgen.TelemetryHints, hybridgen.NewTelemetryProcessor(impl))

	var ctrlLat, dataLat stats.Sample
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cluster.Node(0), hybridgen.TelemetryHints, nil)
		c := hybridgen.NewTelemetryClient(tr)

		// Control plane over TCP.
		for i := 0; i < 5; i++ {
			start := p.Now()
			cfg, err := c.GetConfig(p, "sampling")
			check(err)
			ctrlLat.Add(float64(p.Now() - start))
			if cfg != "sampling=enabled" {
				panic("bad config")
			}
		}
		check(c.ReportStatus(p, "healthy"))

		// Data plane over RDMA.
		block := make([]byte, 64<<10)
		for i := 0; i < 16; i++ {
			start := p.Now()
			check(c.PushSamples(p, block))
			dataLat.Add(float64(p.Now() - start))
		}
		win, err := c.PullWindow(p, 0, 64<<10)
		check(err)
		fmt.Printf("pulled window: %d bytes\n", len(win))
		p.Sleep(2_000_000)
		env.Stop()
	})
	env.Run()

	fmt.Printf("GetConfig over TCP (hint transport=tcp):   avg %s\n", stats.FormatNs(ctrlLat.Mean()))
	fmt.Printf("PushSamples 64KB over RDMA (throughput):   avg %s (%.0f MB/s per stream)\n",
		stats.FormatNs(dataLat.Mean()), float64(64<<10)/dataLat.Mean()*1000)
	fmt.Println("control traffic stays on the kernel path; bulk data rides hint-planned RDMA")
	fmt.Printf("status reports via TCP oneway: %d\n", impl.reports)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
