// Command hatlint runs the repository's custom static-analysis suite
// (DESIGN.md §11, §16): the AST/type-based checks (simdet, maporder,
// nogoroutine, obsnames, wrsigned) and the flow-sensitive checks
// (arenaalias, epochfence, wirebounds, errtaxonomy). It loads packages
// from source with the standard library's type checker, so it needs no
// module proxy and no generated export data.
//
// Usage:
//
//	go run ./cmd/hatlint ./...          # whole repo (the CI invocation)
//	go run ./cmd/hatlint ./internal/sim # one package
//	go run ./cmd/hatlint -list          # describe the suite
//	go run ./cmd/hatlint -json ./...    # findings as a JSON array
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hatrpc/internal/analyzers"
	"hatrpc/internal/analyzers/framework"
)

// finding is the machine-readable shape of one diagnostic, for editor
// and CI integrations that would otherwise scrape the text format.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	ld, err := framework.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fail(err)
	}
	diags := framework.Run(pkgs, suite)
	if *asJSON {
		// Always an array — `[]` when clean — so consumers can parse
		// unconditionally and branch on length, not on exit status.
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			pos := ld.Fset.Position(d.Pos)
			out = append(out, finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			pos := ld.Fset.Position(d.Pos)
			fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hatlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hatlint:", err)
	os.Exit(2)
}
