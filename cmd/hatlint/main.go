// Command hatlint runs the repository's custom static-analysis suite
// (DESIGN.md §11): simdet, maporder, nogoroutine, obsnames and
// wrsigned. It loads packages from source with the standard library's
// type checker, so it needs no module proxy and no generated export
// data.
//
// Usage:
//
//	go run ./cmd/hatlint ./...          # whole repo (the CI invocation)
//	go run ./cmd/hatlint ./internal/sim # one package
//	go run ./cmd/hatlint -list          # describe the suite
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"hatrpc/internal/analyzers"
	"hatrpc/internal/analyzers/framework"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	ld, err := framework.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fail(err)
	}
	diags := framework.Run(pkgs, suite)
	for _, d := range diags {
		pos := ld.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hatlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hatlint:", err)
	os.Exit(2)
}
