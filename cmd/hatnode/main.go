// Command hatnode boots a YAML-configured HatKV cluster node fleet in
// the deterministic simulation and soaks it (DESIGN.md §17). The config
// splits neo-go-style into an application section (per-node: ops
// surface, drain policy, workload sizing) and a protocol section
// (cluster-wide: topology, durability, transport tuning, hints).
//
// Usage:
//
//	hatnode [-config FILE] [-validate]
//	hatnode [-config FILE] [-rolling] [-rounds N] [-graceful=false] [-metrics]
//
// Without -rolling the fleet runs the configured retry-until-acked
// workload to completion (a plain soak). With -rolling an operator
// process additionally restarts every node in turn — graceful drain →
// stop → reboot → rejoin → resync by default, or a hard kill with
// -graceful=false — and the report adds per-cycle restart economics:
// back-to-ready time, post-stop recovery, and the error-visible window.
//
// -validate parses and validates the config, prints a one-line summary,
// and exits without running: the CI gate for the examples/ configs.
// Strict decoding means an unknown or malformed key names itself and
// its line. -metrics prints the Prometheus text exposition at exit even
// when the config's metrics_sink says "none".
//
// Identical flags and config produce byte-identical output — the run is
// seeded virtual time end to end.
package main

import (
	"flag"
	"fmt"
	"os"

	"hatrpc/internal/chaos"
	"hatrpc/internal/node"
	"hatrpc/internal/obs"
)

func main() {
	cfgPath := flag.String("config", "", "YAML node config file (absent keys keep built-in defaults)")
	validate := flag.Bool("validate", false, "parse and validate the config, then exit")
	rolling := flag.Bool("rolling", false, "restart every node in turn during the soak")
	rounds := flag.Int("rounds", 1, "full rolling passes over all nodes (with -rolling)")
	graceful := flag.Bool("graceful", true, "drain nodes before stopping; false hard-kills (with -rolling)")
	metrics := flag.Bool("metrics", false, "print the Prometheus exposition at exit regardless of metrics_sink")
	flag.Parse()

	cfg := node.DefaultConfig()
	src := "built-in defaults"
	if *cfgPath != "" {
		raw, err := os.ReadFile(*cfgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hatnode: %v\n", err)
			os.Exit(1)
		}
		cfg, err = node.ParseConfig(string(raw))
		if err != nil {
			fmt.Fprintf(os.Stderr, "hatnode: %s: %v\n", *cfgPath, err)
			os.Exit(1)
		}
		src = *cfgPath
	}
	if *validate {
		fmt.Printf("hatnode: %s: OK — %q, %d servers, %d shards, rf %d, drain deadline %dns, linger %dns\n",
			src, cfg.Application.Name, cfg.Protocol.Servers, cfg.Protocol.Shards,
			cfg.Protocol.RF, cfg.Application.DrainDeadlineNs, cfg.Application.DrainLingerNs)
		return
	}

	reg := obs.NewRegistry()
	rc := chaos.RollingConfig{Node: cfg, Graceful: *graceful, Reg: reg}
	if *rolling {
		rc.Rounds = *rounds
	}
	res, err := chaos.RollingSoak(rc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hatnode: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Report())
	if *metrics || cfg.Application.MetricsSink == "stdout" {
		fmt.Print(reg.Exposition())
	}
}
