// Command tpchbench runs the TPC-H comparison of §5.5 (Figure 17): all
// 22 queries over the simulated 10-node cluster on three RPC stacks —
// vanilla Thrift over IPoIB, HatRPC-Service, and HatRPC-Function.
//
// Usage:
//
//	tpchbench [-sf 0.02] [-workers 9] [-queries 1,6,19]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hatrpc/internal/stats"
	"hatrpc/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.02, "scale factor (paper used 1000 on real hardware)")
	workers := flag.Int("workers", 9, "worker node count")
	queries := flag.String("queries", "", "comma-separated query numbers (default: all 22)")
	flag.Parse()

	cfg := tpch.DefaultBenchConfig()
	cfg.SF = *sf
	cfg.Workers = *workers
	if *queries != "" {
		for _, s := range strings.Split(*queries, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 22 {
				fmt.Fprintf(os.Stderr, "tpchbench: bad query %q\n", s)
				os.Exit(2)
			}
			cfg.Queries = append(cfg.Queries, n)
		}
	}

	fmt.Printf("TPC-H SF%g, %d workers + 1 coordinator\n\n", cfg.SF, cfg.Workers)
	results := tpch.RunBench(cfg)

	byQS := map[int]map[tpch.Stack]int64{}
	var qs []int
	for _, r := range results {
		if byQS[r.Query] == nil {
			byQS[r.Query] = map[tpch.Stack]int64{}
			qs = append(qs, r.Query)
		}
		byQS[r.Query][r.Stack] = r.TimeNs
	}
	tb := stats.NewTable("query", "IPoIB", "HatRPC-Svc", "HatRPC-Fn", "Svc speedup", "Fn speedup")
	totals := map[tpch.Stack]int64{}
	for _, q := range qs {
		m := byQS[q]
		for s, t := range m {
			totals[s] += t
		}
		tb.Row(fmt.Sprintf("Q%d", q),
			stats.FormatNs(float64(m[tpch.StackIPoIB])),
			stats.FormatNs(float64(m[tpch.StackHatService])),
			stats.FormatNs(float64(m[tpch.StackHatFunction])),
			ratio(m[tpch.StackIPoIB], m[tpch.StackHatService]),
			ratio(m[tpch.StackIPoIB], m[tpch.StackHatFunction]))
	}
	tb.Row("TOTAL",
		stats.FormatNs(float64(totals[tpch.StackIPoIB])),
		stats.FormatNs(float64(totals[tpch.StackHatService])),
		stats.FormatNs(float64(totals[tpch.StackHatFunction])),
		ratio(totals[tpch.StackIPoIB], totals[tpch.StackHatService]),
		ratio(totals[tpch.StackIPoIB], totals[tpch.StackHatFunction]))
	fmt.Print(tb)
}

func ratio(base, v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(v))
}
