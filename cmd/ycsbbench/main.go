// Command ycsbbench runs the extended YCSB comparison of §5.4 (Figures
// 15 and 16): HatKV under HatRPC-Service and HatRPC-Function hints versus
// the emulated AR-gRPC, HERD, Pilaf and RFP communication protocols, all
// over the same LMDB-backed store.
//
// Usage:
//
//	ycsbbench [-workload A|B] [-clients N] [-records N] [-duration ns]
package main

import (
	"flag"
	"fmt"
	"os"

	"hatrpc/internal/stats"
	"hatrpc/internal/ycsb"
)

func main() {
	workload := flag.String("workload", "A", "YCSB workload: A or B")
	clients := flag.Int("clients", 128, "total client count")
	records := flag.Int("records", 3000, "preloaded record count")
	duration := flag.Int64("duration", 500_000, "measured run length (virtual ns)")
	flag.Parse()

	var w ycsb.Workload
	switch *workload {
	case "A", "a":
		w = ycsb.WorkloadA(*records)
	case "B", "b":
		w = ycsb.WorkloadB(*records)
	default:
		fmt.Fprintf(os.Stderr, "ycsbbench: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg := ycsb.DefaultRunConfig(w)
	cfg.Clients = *clients
	cfg.DurationNs = *duration

	fmt.Printf("YCSB workload-%s: %d records, %d clients over %d nodes\n\n",
		w.Name, w.Records, cfg.Clients, cfg.Nodes-1)
	results := ycsb.Run(cfg)

	thr := stats.NewTable("system", "total Kops/s", "Get", "Put", "MGet", "MPut")
	lat := stats.NewTable("system", "Get µs", "Put µs", "MGet µs", "MPut µs")
	for _, r := range results {
		thr.Row(r.System.String(),
			fmt.Sprintf("%.1f", r.TotalOps/1000),
			kops(r.PerOp[ycsb.OpGet].OpsPerS), kops(r.PerOp[ycsb.OpPut].OpsPerS),
			kops(r.PerOp[ycsb.OpMultiGet].OpsPerS), kops(r.PerOp[ycsb.OpMultiPut].OpsPerS))
		lat.Row(r.System.String(),
			us(r.PerOp[ycsb.OpGet].AvgLatNs), us(r.PerOp[ycsb.OpPut].AvgLatNs),
			us(r.PerOp[ycsb.OpMultiGet].AvgLatNs), us(r.PerOp[ycsb.OpMultiPut].AvgLatNs))
	}
	fmt.Println("(a) Throughput (Kops/s per operation)")
	fmt.Println(thr)
	fmt.Println("(b) Average latency per operation")
	fmt.Println(lat)
}

func kops(v float64) string { return fmt.Sprintf("%.1f", v/1000) }
func us(ns float64) string  { return fmt.Sprintf("%.1f", ns/1000) }
