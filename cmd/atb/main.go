// Command atb runs the Apache Thrift Benchmarks on the simulated
// cluster: the raw-protocol studies behind Figures 4–5 and the
// hint-driven studies behind Figures 11–14.
//
// Usage:
//
//	atb -bench latency-protocols|throughput-protocols|latency-hints|throughput-hints|mix [-size N]
//	    [-metrics] [-trace FILE] [-faults] [-loss P] [-jitter NS] [-deadline NS]
//	atb -bench crash [-sync full|meta|none] [-uptimes NS,NS,...] [-crash-horizon NS]
//	atb -bench cluster [-rf N,N,...] [-sync full|meta|none] [-uptimes NS,NS,...] [-crash-horizon NS]
//	atb -bench fanin [-vclients N,N,...] [-pools N,N,...] [-workers N] [-tenant-limit N]
//	atb -bench rolling [-drain-deadlines NS,NS,...] [-staggers NS,NS,...] [-rounds N]
//
// -bench fanin sweeps the connection-virtualization tier (DESIGN.md
// §14): goodput and small-call p99 versus connected virtual-client
// count (default 10k → 1M) across shared-QP pool sizes, run unhinted
// and hinted. The unhinted rows show shared-QP head-of-line blocking
// (bulk calls monopolize the FIFO borrow queue); the hinted rows show
// the concurrency hint re-sizing the pool and the priority hint letting
// small calls overtake bulk ones.
//
// -bench crash sweeps the chaos soak harness (DESIGN.md §12) over mean
// server uptimes: each point crashes and reboots the HatKV server on a
// seeded schedule while sessions reconnect and replay, and reports
// acked-write goodput, loss, and the crash→first-ack recovery-time
// distribution. -sync selects the store's durability mode.
//
// -bench cluster sweeps the sharded, replicated HatKV tier (DESIGN.md
// §15) over replication factor × crash rate: each point runs a 5-node
// cluster under seeded primary kills and split-brain partitions, and
// reports put-attempt availability, acked goodput, epoch-fenced
// promotions, the zero-loss audit, and failover recovery times. The
// same seed drives every point, so the crash schedule is held constant
// while RF varies.
//
// -bench rolling sweeps the node-lifecycle tier (DESIGN.md §17) over
// graceful-drain deadline × restart stagger: each point rolls a 5-node
// cluster one restart at a time (drain → stop → reboot → rejoin →
// resync) under a retry-until-acked workload and reports availability,
// the error-visible window (summed put-latency excess during restart
// cycles), and post-stop recovery times. One hard-kill baseline row per
// stagger shows what the graceful drain must beat.
//
// -metrics prints the obs counter/histogram/gauge tables accumulated
// across every simulation of the sweep; -trace writes a deterministic
// chrome://tracing JSON file (open in chrome://tracing or
// ui.perfetto.dev). Both observe the same virtual-time run: two
// invocations with identical arguments emit byte-identical output.
//
// -faults enables fault injection with 1% per-hop packet loss; -loss
// and -jitter set an explicit drop probability / latency jitter bound
// (either implies -faults). Fault runs automatically arm the engine's
// deadline/retry layer (-deadline, default 2 ms) so every call
// completes via retransmission. Identical arguments still emit
// byte-identical output — faults draw from the same seeded RNG.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hatrpc/internal/atb"
	"hatrpc/internal/engine"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/obs"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
)

func main() {
	bench := flag.String("bench", "latency-hints", "benchmark: latency-protocols, throughput-protocols, latency-hints, throughput-hints, mix, overload, crash, cluster, hotpath, fanin")
	size := flag.Int("size", 512, "payload size for the mix benchmark")
	vclients := flag.String("vclients", "", "fanin bench: comma-separated connected virtual-client counts (default 10000,100000,1000000)")
	pools := flag.String("pools", "", "fanin bench: comma-separated physical shared-QP pool sizes (default 4,16)")
	workers := flag.Int("workers", 0, "fanin bench: concurrent borrower procs (default 64)")
	tenantLimit := flag.Int("tenant-limit", 0, "fanin bench: server-side per-tenant concurrent-handler cap (0 = off)")
	offeredLoad := flag.String("offered-load", "", "overload bench: comma-separated offered loads in Kops/s (default 70,140,210,280)")
	admitLimit := flag.Int("admit-limit", 28, "overload bench: max concurrent handlers before the admission policy kicks in")
	shedPolicy := flag.String("shed-policy", "newest", "overload bench: admission policy: block, newest, oldest")
	credits := flag.Bool("credits", true, "overload bench: enable receiver-driven credit flow control (false sweeps the RNR-NAK control)")
	metrics := flag.Bool("metrics", false, "print obs counter/histogram/gauge tables after the run")
	traceFile := flag.String("trace", "", "write a chrome://tracing JSON event trace to FILE")
	faults := flag.Bool("faults", false, "inject faults: 1% per-hop packet loss unless -loss/-jitter override")
	loss := flag.Float64("loss", 0, "per-hop drop probability, e.g. 0.05 (implies -faults)")
	jitter := flag.Int64("jitter", 0, "max per-hop latency jitter in ns (implies -faults)")
	deadline := flag.Int64("deadline", 2_000_000, "per-call deadline in ns for fault runs (0 disables retries)")
	syncMode := flag.String("sync", "full", "crash/cluster bench: store durability mode: full, meta, none")
	uptimes := flag.String("uptimes", "", "crash/cluster bench: comma-separated mean uptimes in ns")
	crashHorizon := flag.Int64("crash-horizon", 0, "crash/cluster bench: schedule horizon in ns")
	rfs := flag.String("rf", "", "cluster bench: comma-separated replication factors (default 1,2,3)")
	drainDeadlines := flag.String("drain-deadlines", "", "rolling bench: comma-separated graceful drain deadlines in ns (default 150000,600000)")
	staggers := flag.String("staggers", "", "rolling bench: comma-separated restart staggers in ns (default 800000,1600000)")
	rounds := flag.Int("rounds", 0, "rolling bench: rolling rounds over all nodes (default 1)")
	flag.Parse()

	if *faults || *loss > 0 || *jitter > 0 {
		p := *loss
		if p == 0 && *jitter == 0 {
			p = 0.01
		}
		atb.FaultSpec = &simnet.FaultConfig{DropProb: p, JitterNs: *jitter}
		atb.CallDeadlineNs = *deadline
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics || *traceFile != "" {
		reg = obs.NewRegistry()
		if *traceFile != "" {
			tracer = obs.NewTracer()
			reg.SetTracer(tracer)
		}
		runIdx := 0
		atb.FabricHook = func(f *atb.Fabric) {
			// Separate each simulation's node timelines in the trace.
			tracer.SetPIDOffset(runIdx * 16)
			runIdx++
			for _, e := range f.Engines() {
				e.SetObs(reg)
			}
			if fp := f.Cluster.Faults(); fp != nil {
				fp.SetObs(reg)
			}
		}
	}

	switch *bench {
	case "latency-protocols":
		pts := atb.RunProtoLatency(atb.DefaultProtoLatencyConfig())
		tb := stats.NewTable("protocol", "polling", "size", "avg", "p99")
		for _, p := range pts {
			tb.Row(p.Proto.String(), poll(p.Busy), stats.FormatBytes(p.Size),
				stats.FormatNs(p.AvgNs), stats.FormatNs(p.P99Ns))
		}
		fmt.Print(tb)
	case "throughput-protocols":
		pts := atb.RunProtoThroughput(atb.DefaultProtoThroughputConfig())
		tb := stats.NewTable("protocol", "polling", "size", "clients", "Kops/s", "MB/s")
		for _, p := range pts {
			tb.Row(p.Proto.String(), poll(p.Busy), stats.FormatBytes(p.Size), p.Clients,
				fmt.Sprintf("%.1f", p.OpsPerS/1000), fmt.Sprintf("%.1f", p.MBps))
		}
		fmt.Print(tb)
	case "latency-hints":
		pts := atb.RunHintLatency(atb.DefaultHintLatencyConfig())
		tb := stats.NewTable("system", "size", "avg", "p99")
		for _, p := range pts {
			tb.Row(p.System, stats.FormatBytes(p.Size), stats.FormatNs(p.AvgNs), stats.FormatNs(p.P99Ns))
		}
		fmt.Print(tb)
	case "throughput-hints":
		pts := atb.RunHintThroughput(atb.DefaultHintThroughputConfig())
		tb := stats.NewTable("system", "size", "clients", "Kops/s", "MB/s")
		for _, p := range pts {
			tb.Row(p.System, stats.FormatBytes(p.Size), p.Clients,
				fmt.Sprintf("%.1f", p.OpsPerS/1000), fmt.Sprintf("%.1f", p.MBps))
		}
		fmt.Print(tb)
	case "mix":
		cfg := atb.DefaultMixConfig512()
		if *size == 131072 {
			cfg = atb.DefaultMixConfig128K()
		}
		pts := atb.RunMix(cfg)
		tb := stats.NewTable("system", "clients", "lat-call avg", "tput-call Kops/s")
		for _, p := range pts {
			tb.Row(p.System, p.Clients, stats.FormatNs(p.LatAvgNs), fmt.Sprintf("%.1f", p.TputOpsS/1000))
		}
		fmt.Print(tb)
	case "overload":
		cfg := atb.DefaultOverloadConfig()
		cfg.AdmitLimit = *admitLimit
		cfg.Credits = *credits
		pol, err := engine.ParseAdmitPolicy(*shedPolicy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atb: %v\n", err)
			os.Exit(2)
		}
		cfg.ShedPolicy = pol
		if *offeredLoad != "" {
			cfg.OfferedOps = nil
			for _, s := range strings.Split(*offeredLoad, ",") {
				kops, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "atb: bad -offered-load %q: %v\n", s, err)
					os.Exit(2)
				}
				cfg.OfferedOps = append(cfg.OfferedOps, int64(kops*1000))
			}
		}
		pts := atb.RunOverload(cfg)
		tb := stats.NewTable("offered Kops", "goodput Kops", "shed/s", "deadline/s", "avg", "p99",
			"rnr-naks", "rnr-fail", "stalls")
		for _, p := range pts {
			tb.Row(fmt.Sprintf("%.0f", float64(p.Offered)/1000),
				fmt.Sprintf("%.1f", p.GoodputOps/1000),
				fmt.Sprintf("%.0f", p.ShedOps),
				fmt.Sprintf("%.0f", p.DeadlineOps+p.BreakerOps),
				stats.FormatNs(p.AvgNs), stats.FormatNs(p.P99Ns),
				p.RnrNaks, p.RnrFailures, p.CreditStalls)
		}
		fmt.Print(tb)
	case "hotpath":
		cfg := atb.DefaultHotpathConfig()
		t0 := hostNow()
		base := atb.RunHotpath(cfg, false)
		baseWall := hostNow().Sub(t0)
		t1 := hostNow()
		hot := atb.RunHotpath(cfg, true)
		hotWall := hostNow().Sub(t1)
		tb := stats.NewTable("workload", "size", "base avg", "hot avg", "base p99", "hot p99", "sim speedup")
		for i, bp := range base {
			hp := hot[i]
			tb.Row(bp.Workload, stats.FormatBytes(bp.Size),
				stats.FormatNs(bp.AvgNs), stats.FormatNs(hp.AvgNs),
				stats.FormatNs(bp.P99Ns), stats.FormatNs(hp.P99Ns),
				fmt.Sprintf("%.3fx", bp.AvgNs/hp.AvgNs))
		}
		fmt.Print(tb)
		fmt.Printf("\nwall-clock: baseline %.3fs, hotpath %.3fs (%.2fx)\n",
			baseWall.Seconds(), hotWall.Seconds(), baseWall.Seconds()/hotWall.Seconds())
		fmt.Println("(simulated columns are virtual time and deterministic; the wall-clock line is host time and varies run to run)")
	case "fanin":
		cfg := atb.DefaultFaninConfig()
		if *vclients != "" {
			cfg.VClients = nil
			for _, s := range strings.Split(*vclients, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "atb: bad -vclients %q: %v\n", s, err)
					os.Exit(2)
				}
				cfg.VClients = append(cfg.VClients, n)
			}
		}
		if *pools != "" {
			cfg.Pools = nil
			for _, s := range strings.Split(*pools, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "atb: bad -pools %q: %v\n", s, err)
					os.Exit(2)
				}
				cfg.Pools = append(cfg.Pools, n)
			}
		}
		if *workers > 0 {
			cfg.Workers = *workers
		}
		cfg.TenantLimit = *tenantLimit
		fmt.Print(atb.FaninTable(atb.RunFanin(cfg)))
	case "crash":
		cfg := atb.DefaultCrashBenchConfig()
		cfg.Sync = parseSync(*syncMode)
		if *crashHorizon > 0 {
			cfg.HorizonNs = *crashHorizon
		}
		if *uptimes != "" {
			cfg.MeanUptimes = parseUptimes(*uptimes)
		}
		pts := atb.RunCrash(cfg)
		tb := stats.NewTable("mean-uptime", "crashes", "acked", "lost", "goodput Kops/s",
			"recov avg", "recov p99", "replays", "reconnects")
		for _, p := range pts {
			tb.Row(stats.FormatNs(float64(p.MeanUptimeNs)), p.Crashes, p.Acked, p.Lost,
				fmt.Sprintf("%.1f", p.GoodputOps/1000),
				stats.FormatNs(p.RecovAvgNs), stats.FormatNs(p.RecovP99Ns),
				p.Replays, p.Connects)
		}
		fmt.Print(tb)
	case "cluster":
		cfg := atb.DefaultClusterBenchConfig()
		cfg.Sync = parseSync(*syncMode)
		if *crashHorizon > 0 {
			cfg.HorizonNs = *crashHorizon
		}
		if *uptimes != "" {
			cfg.MeanUptimes = parseUptimes(*uptimes)
		}
		if *rfs != "" {
			cfg.RFs = nil
			for _, s := range strings.Split(*rfs, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "atb: bad -rf %q: %v\n", s, err)
					os.Exit(2)
				}
				cfg.RFs = append(cfg.RFs, n)
			}
		}
		pts := atb.RunClusterBench(cfg)
		tb := stats.NewTable("rf", "mean-uptime", "crashes", "acked", "lost", "avail",
			"goodput Kops/s", "promotions", "stale-retries", "recov avg", "recov p99")
		for _, p := range pts {
			tb.Row(p.RF, stats.FormatNs(float64(p.MeanUptimeNs)), p.Crashes, p.Acked, p.Lost,
				fmt.Sprintf("%.3f", p.Availability),
				fmt.Sprintf("%.1f", p.GoodputOps/1000),
				p.Promotions, p.StaleRetries,
				stats.FormatNs(p.RecovAvgNs), stats.FormatNs(p.RecovP99Ns))
		}
		fmt.Print(tb)
	case "rolling":
		cfg := atb.DefaultRollingBenchConfig()
		if *drainDeadlines != "" {
			cfg.DrainDeadlines = parseNsList("-drain-deadlines", *drainDeadlines)
		}
		if *staggers != "" {
			cfg.Staggers = parseNsList("-staggers", *staggers)
		}
		if *rounds > 0 {
			cfg.Rounds = *rounds
		}
		pts := atb.RunRollingBench(cfg)
		tb := stats.NewTable("mode", "drain-deadline", "stagger", "acked", "lost", "avail",
			"escalations", "fenced", "promotions", "err-window", "recov avg", "recov max", "ready avg")
		for _, p := range pts {
			mode, dl := "hard-kill", "-"
			if p.Graceful {
				mode = "graceful"
				dl = stats.FormatNs(float64(p.DrainDeadlineNs))
			}
			tb.Row(mode, dl, stats.FormatNs(float64(p.StaggerNs)), p.Acked, p.Lost,
				fmt.Sprintf("%.3f", p.Availability),
				p.Escalations, p.DrainedReqs, p.Promotions,
				stats.FormatNs(float64(p.ErrWindowNs)),
				stats.FormatNs(p.RecovAvgNs), stats.FormatNs(float64(p.RecovMaxNs)),
				stats.FormatNs(p.ReadyAvgNs))
		}
		fmt.Print(tb)
	default:
		fmt.Fprintf(os.Stderr, "atb: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	if *metrics {
		fmt.Println()
		fmt.Print(reg.Render())
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atb: %v\n", err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "atb: write trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "atb: close trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "atb: wrote %d trace events to %s\n", tracer.Len(), *traceFile)
	}
}

// hostNow reads the host wall clock for the hotpath smoke report: that
// mode intentionally prints real elapsed time (the allocation sweep's
// observable effect) alongside the simulated improvement. The reading
// never feeds the simulation — every fabric is seeded and virtual-timed.
func hostNow() time.Time {
	return time.Now() //hatlint:allow simdet -- the hotpath bench reports host wall-clock alongside virtual time by design; the value never enters the simulation
}

// parseSync maps the -sync flag to a store durability mode, exiting on
// an unknown value.
func parseSync(s string) lmdb.SyncMode {
	switch s {
	case "full":
		return lmdb.SyncFull
	case "meta":
		return lmdb.SyncMeta
	case "none":
		return lmdb.NoSync
	}
	fmt.Fprintf(os.Stderr, "atb: bad -sync %q (want full, meta or none)\n", s)
	os.Exit(2)
	return lmdb.SyncFull
}

// parseUptimes parses the -uptimes flag's comma-separated ns list,
// exiting on a malformed entry.
func parseUptimes(arg string) []int64 {
	var out []int64
	for _, s := range strings.Split(arg, ",") {
		ns, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || ns <= 0 {
			fmt.Fprintf(os.Stderr, "atb: bad -uptimes %q: %v\n", s, err)
			os.Exit(2)
		}
		out = append(out, ns)
	}
	return out
}

// parseNsList parses a comma-separated positive-ns list for the named
// flag, exiting on a malformed entry.
func parseNsList(flagName, arg string) []int64 {
	var out []int64
	for _, s := range strings.Split(arg, ",") {
		ns, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || ns <= 0 {
			fmt.Fprintf(os.Stderr, "atb: bad %s %q: %v\n", flagName, s, err)
			os.Exit(2)
		}
		out = append(out, ns)
	}
	return out
}

func poll(busy bool) string {
	if busy {
		return "busy"
	}
	return "event"
}
