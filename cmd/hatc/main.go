// Command hatc is the HatRPC compiler: it parses a hint-annotated Thrift
// IDL file (Figure 7 grammar) and emits Go code — structs, typed clients,
// processors and hint tables — against the hatrpc runtime.
//
// Usage:
//
//	hatc -in service.hrpc -out gen.go [-pkg name]
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"

	"hatrpc/internal/codegen"
	"hatrpc/internal/idl"
)

func main() {
	in := flag.String("in", "", "input IDL file (.hrpc/.thrift)")
	out := flag.String("out", "", "output Go file (default stdout)")
	pkg := flag.String("pkg", "", "output package name (default: IDL namespace)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hatc: -in is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	doc, warns, err := idl.Parse(*in, string(src))
	if err != nil {
		fatal(err)
	}
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, "hatc: warning:", w)
	}
	code, err := codegen.Generate(doc, codegen.Options{Package: *pkg})
	if err != nil {
		fatal(err)
	}
	formatted, err := format.Source([]byte(code))
	if err != nil {
		// Emit unformatted output for debugging, but fail.
		if *out != "" {
			os.WriteFile(*out, []byte(code), 0o644)
		}
		fatal(fmt.Errorf("generated code does not parse: %v", err))
	}
	if *out == "" {
		os.Stdout.Write(formatted)
		return
	}
	if err := os.WriteFile(*out, formatted, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hatc:", err)
	os.Exit(1)
}
