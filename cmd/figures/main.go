// Command figures regenerates every table and figure of the paper's
// evaluation (§5) into the results/ directory: Figures 4, 5, 11, 12, 13,
// 14 (ATB), 15, 16 (YCSB) and 17 (TPC-H), plus the derived percentage
// claims quoted in the §5 text.
//
// Usage:
//
//	figures [-out results] [-only fig04,fig15,...] [-metrics] [-trace FILE]
//	        [-faults] [-loss P] [-jitter NS] [-deadline NS]
//
// -metrics writes the obs counter/histogram/gauge tables accumulated
// across the ATB sweeps to results/metrics.txt; -trace writes a
// deterministic chrome://tracing JSON event trace to FILE.
//
// -faults enables fault injection on the ATB fabrics (1% per-hop loss
// unless -loss/-jitter override; either implies -faults) and arms the
// engine deadline/retry layer (-deadline, default 2 ms) so sweeps
// complete under loss via retransmission.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hatrpc/internal/atb"
	"hatrpc/internal/engine"
	"hatrpc/internal/obs"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
	"hatrpc/internal/tpch"
	"hatrpc/internal/ycsb"
)

var outDir string

func main() {
	flag.StringVar(&outDir, "out", "results", "output directory")
	only := flag.String("only", "", "comma-separated subset (fig04..fig17,derived)")
	metrics := flag.Bool("metrics", false, "write obs tables to results/metrics.txt")
	traceFile := flag.String("trace", "", "write a chrome://tracing JSON event trace to FILE")
	faults := flag.Bool("faults", false, "inject faults: 1% per-hop packet loss unless -loss/-jitter override")
	loss := flag.Float64("loss", 0, "per-hop drop probability, e.g. 0.05 (implies -faults)")
	jitter := flag.Int64("jitter", 0, "max per-hop latency jitter in ns (implies -faults)")
	deadline := flag.Int64("deadline", 2_000_000, "per-call deadline in ns for fault runs (0 disables retries)")
	flag.Parse()

	if *faults || *loss > 0 || *jitter > 0 {
		p := *loss
		if p == 0 && *jitter == 0 {
			p = 0.01
		}
		atb.FaultSpec = &simnet.FaultConfig{DropProb: p, JitterNs: *jitter}
		atb.CallDeadlineNs = *deadline
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatal(err)
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics || *traceFile != "" {
		reg = obs.NewRegistry()
		if *traceFile != "" {
			tracer = obs.NewTracer()
			reg.SetTracer(tracer)
		}
		runIdx := 0
		atb.FabricHook = func(f *atb.Fabric) {
			tracer.SetPIDOffset(runIdx * 16)
			runIdx++
			for _, e := range f.Engines() {
				e.SetObs(reg)
			}
			if fp := f.Cluster.Faults(); fp != nil {
				fp.SetObs(reg)
			}
		}
	}
	defer func() {
		if *metrics {
			path := filepath.Join(outDir, "metrics.txt")
			if err := os.WriteFile(path, []byte(reg.Render()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote %s\n", path)
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			if err := tracer.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote %d trace events to %s\n", tracer.Len(), *traceFile)
		}
	}()
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	run := func(name string, fn func() string) {
		if len(want) > 0 && !want[name] {
			return
		}
		fmt.Printf("generating %s...\n", name)
		content := fn()
		path := filepath.Join(outDir, name+".txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}

	var fig11Pts []atb.HintLatencyPoint
	var fig17Res []tpch.QueryResult

	run("fig04", fig04)
	run("fig05", fig05)
	run("fig11", func() string {
		s, pts := fig11()
		fig11Pts = pts
		return s
	})
	run("fig12", fig12)
	run("fig13", func() string { return figMix(atb.DefaultMixConfig512(), 13) })
	run("fig14", func() string { return figMix(atb.DefaultMixConfig128K(), 14) })
	run("fig15", func() string { return figYCSB(ycsb.WorkloadA(3000), 15) })
	run("fig16", func() string { return figYCSB(ycsb.WorkloadB(3000), 16) })
	run("fig17", func() string {
		s, res := fig17()
		fig17Res = res
		return s
	})
	run("derived", func() string { return derived(fig11Pts, fig17Res) })
}

func header(fig, caption string) string {
	return fmt.Sprintf("%s — %s\n(simulated reproduction; shapes comparable, absolute values are the simulator's)\n\n", fig, caption)
}

func poll(b bool) string {
	if b {
		return "busy"
	}
	return "event"
}

func fig04() string {
	cfg := atb.DefaultProtoLatencyConfig()
	pts := atb.RunProtoLatency(cfg)
	tb := stats.NewTable("protocol", "polling", "size", "avg", "p99")
	for _, p := range pts {
		tb.Row(p.Proto.String(), poll(p.Busy), stats.FormatBytes(p.Size),
			stats.FormatNs(p.AvgNs), stats.FormatNs(p.P99Ns))
	}
	return header("Figure 4", "RPC-like latency of nine RDMA protocols × polling mechanism") + tb.String()
}

func fig05() string {
	cfg := atb.DefaultProtoThroughputConfig()
	// Restrict to the five headline protocols to keep runtime sane; the
	// full nine are available via cmd/atb.
	cfg.Protos = []engine.Protocol{
		engine.EagerSendRecv, engine.DirectWriteSend, engine.DirectWriteIMM,
		engine.WriteRNDV, engine.RFP,
	}
	cfg.Clients = []int{1, 4, 16, 28, 64, 128, 256, 512}
	pts := atb.RunProtoThroughput(cfg)
	tb := stats.NewTable("protocol", "polling", "size", "clients", "Kops/s", "MB/s")
	for _, p := range pts {
		tb.Row(p.Proto.String(), poll(p.Busy), stats.FormatBytes(p.Size), p.Clients,
			fmt.Sprintf("%.1f", p.OpsPerS/1000), fmt.Sprintf("%.1f", p.MBps))
	}
	return header("Figure 5", "multi-client throughput of RDMA protocols × polling (under/full/over subscription)") + tb.String()
}

func fig11() (string, []atb.HintLatencyPoint) {
	pts := atb.RunHintLatency(atb.DefaultHintLatencyConfig())
	tb := stats.NewTable("system", "size", "avg", "p99")
	for _, p := range pts {
		tb.Row(p.System, stats.FormatBytes(p.Size), stats.FormatNs(p.AvgNs), stats.FormatNs(p.P99Ns))
	}
	return header("Figure 11", "service-level hints: latency vs fixed-protocol baselines") + tb.String(), pts
}

func fig12() string {
	cfg := atb.DefaultHintThroughputConfig()
	pts := atb.RunHintThroughput(cfg)
	tb := stats.NewTable("system", "size", "clients", "Kops/s", "MB/s")
	for _, p := range pts {
		tb.Row(p.System, stats.FormatBytes(p.Size), p.Clients,
			fmt.Sprintf("%.1f", p.OpsPerS/1000), fmt.Sprintf("%.1f", p.MBps))
	}
	return header("Figure 12", "service-level hints: aggregated throughput, 1–512 clients") + tb.String()
}

func figMix(cfg atb.MixConfig, fig int) string {
	pts := atb.RunMix(cfg)
	tb := stats.NewTable("system", "clients", "lat-call avg", "tput-call Kops/s")
	for _, p := range pts {
		tb.Row(p.System, p.Clients, stats.FormatNs(p.LatAvgNs), fmt.Sprintf("%.1f", p.TputOpsS/1000))
	}
	return header(fmt.Sprintf("Figure %d", fig),
		fmt.Sprintf("function-level hints: 50/50 mixed workload, %s payloads", stats.FormatBytes(cfg.Size))) + tb.String()
}

func figYCSB(w ycsb.Workload, fig int) string {
	cfg := ycsb.DefaultRunConfig(w)
	results := ycsb.Run(cfg)
	thr := stats.NewTable("system", "total Kops/s", "Get", "Put", "MGet", "MPut")
	lat := stats.NewTable("system", "Get µs", "Put µs", "MGet µs", "MPut µs")
	for _, r := range results {
		thr.Row(r.System.String(), fmt.Sprintf("%.1f", r.TotalOps/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpGet].OpsPerS/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpPut].OpsPerS/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpMultiGet].OpsPerS/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpMultiPut].OpsPerS/1000))
		lat.Row(r.System.String(),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpGet].AvgLatNs/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpPut].AvgLatNs/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpMultiGet].AvgLatNs/1000),
			fmt.Sprintf("%.1f", r.PerOp[ycsb.OpMultiPut].AvgLatNs/1000))
	}
	return header(fmt.Sprintf("Figure %d", fig),
		fmt.Sprintf("HatKV with YCSB-%s, 128 clients: (a) throughput (b) latency", w.Name)) +
		"(a) Throughput per operation (Kops/s)\n" + thr.String() +
		"\n(b) Average latency per operation (µs)\n" + lat.String()
}

func fig17() (string, []tpch.QueryResult) {
	cfg := tpch.DefaultBenchConfig()
	results := tpch.RunBench(cfg)
	byQS := map[int]map[tpch.Stack]int64{}
	var qs []int
	for _, r := range results {
		if byQS[r.Query] == nil {
			byQS[r.Query] = map[tpch.Stack]int64{}
			qs = append(qs, r.Query)
		}
		byQS[r.Query][r.Stack] = r.TimeNs
	}
	tb := stats.NewTable("query", "IPoIB", "HatRPC-Svc", "HatRPC-Fn", "Svc speedup", "Fn speedup")
	totals := map[tpch.Stack]int64{}
	for _, q := range qs {
		m := byQS[q]
		for s, t := range m {
			totals[s] += t
		}
		tb.Row(fmt.Sprintf("Q%d", q),
			stats.FormatNs(float64(m[tpch.StackIPoIB])),
			stats.FormatNs(float64(m[tpch.StackHatService])),
			stats.FormatNs(float64(m[tpch.StackHatFunction])),
			ratio(m[tpch.StackIPoIB], m[tpch.StackHatService]),
			ratio(m[tpch.StackIPoIB], m[tpch.StackHatFunction]))
	}
	tb.Row("TOTAL",
		stats.FormatNs(float64(totals[tpch.StackIPoIB])),
		stats.FormatNs(float64(totals[tpch.StackHatService])),
		stats.FormatNs(float64(totals[tpch.StackHatFunction])),
		ratio(totals[tpch.StackIPoIB], totals[tpch.StackHatService]),
		ratio(totals[tpch.StackIPoIB], totals[tpch.StackHatFunction]))
	return header("Figure 17", "TPC-H query execution time across three RPC stacks (SF0.02 simulated)") + tb.String(), results
}

// derived reproduces the §5.2/§5.5 textual claims from the measured data.
func derived(fig11Pts []atb.HintLatencyPoint, fig17Res []tpch.QueryResult) string {
	var b strings.Builder
	b.WriteString("Derived claims (paper §5.2 / §5.5 text)\n\n")
	if len(fig11Pts) == 0 {
		fig11Pts = atb.RunHintLatency(atb.DefaultHintLatencyConfig())
	}
	bySys := map[string]map[int]float64{}
	for _, p := range fig11Pts {
		if bySys[p.System] == nil {
			bySys[p.System] = map[int]float64{}
		}
		bySys[p.System][p.Size] = p.AvgNs
	}
	imp := func(base string, small bool) (lo, hi float64) {
		lo, hi = 1e18, -1e18
		for size, hat := range bySys["HatRPC"] {
			if (size <= 4096) != small {
				continue
			}
			bl, ok := bySys[base][size]
			if !ok || bl == 0 {
				continue
			}
			v := 100 * (bl - hat) / bl
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}
	for _, base := range []string{"Hybrid-EagerRNDV", "Direct-Write-Send", "RFP"} {
		slo, shi := imp(base, true)
		llo, lhi := imp(base, false)
		fmt.Fprintf(&b, "Fig.11 latency improvement vs %-18s ≤4KB: %5.1f%%–%5.1f%%   >4KB: %5.1f%%–%5.1f%%\n",
			base+":", slo, shi, llo, lhi)
	}
	b.WriteString("(paper: ≤4KB 37–54% vs Hybrid, ≤21% vs DWS, 18–25% vs RFP; >4KB 20–51%, ≤38%, ≤55%)\n\n")

	if len(fig17Res) == 0 {
		fig17Res = tpch.RunBench(tpch.DefaultBenchConfig())
	}
	totals := map[tpch.Stack]int64{}
	best := map[tpch.Stack]float64{}
	bestQ := map[tpch.Stack]int{}
	byQ := map[int]map[tpch.Stack]int64{}
	for _, r := range fig17Res {
		totals[r.Stack] += r.TimeNs
		if byQ[r.Query] == nil {
			byQ[r.Query] = map[tpch.Stack]int64{}
		}
		byQ[r.Query][r.Stack] = r.TimeNs
	}
	for q, m := range byQ {
		for _, s := range []tpch.Stack{tpch.StackHatService, tpch.StackHatFunction} {
			if m[s] > 0 {
				sp := float64(m[tpch.StackIPoIB]) / float64(m[s])
				if sp > best[s] {
					best[s] = sp
					bestQ[s] = q
				}
			}
		}
	}
	svcTotal := 100 * (1 - float64(totals[tpch.StackHatService])/float64(totals[tpch.StackIPoIB]))
	fnX := float64(totals[tpch.StackIPoIB]) / float64(totals[tpch.StackHatFunction])
	fnVsSvc := float64(totals[tpch.StackHatService]) / float64(totals[tpch.StackHatFunction])
	fmt.Fprintf(&b, "Fig.17 TPC-H totals: HatRPC-Service cuts total time %.1f%% (paper: 7.2%%)\n", svcTotal)
	fmt.Fprintf(&b, "Fig.17 HatRPC-Function vs IPoIB total: %.2fx (paper: 1.27x); vs Service: %.2fx (paper: 1.18x)\n", fnX, fnVsSvc)
	fmt.Fprintf(&b, "Fig.17 best per-query speedups: Service %.2fx on Q%d (paper: 1.21x on Q20), Function %.2fx on Q%d (paper: 1.51x on Q19)\n",
		best[tpch.StackHatService], bestQ[tpch.StackHatService],
		best[tpch.StackHatFunction], bestQ[tpch.StackHatFunction])
	return b.String()
}

func ratio(base, v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(v))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
